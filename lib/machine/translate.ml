type plan_block = { pb_leader : int; pb_len : int }
type plan_loop = { pl_leader : int; pl_bound : int }

type plan_region = {
  pr_head : int;
  pr_blocks : plan_block list;
  pr_priv_mask : int;
  pr_loops : plan_loop list;
}

type stop =
  | X_mmio_read of { paddr : int; reg : Isa.reg }
  | X_mmio_write of { paddr : int; value : Word.t }
  | X_tlb_miss of { vaddr : int; write : bool }
  | X_protection of { vaddr : int; write : bool }
  | X_fault_load of int
  | X_fault_store of int

let exit_budget = 0
let exit_link = 1
let exit_indirect = 2
let exit_bail = 3
let exit_stop = 4

let exit_name = function
  | 0 -> "budget"
  | 1 -> "link"
  | 2 -> "indirect"
  | 3 -> "bail"
  | 4 -> "stop"
  | _ -> "?"

type st = {
  x_regs : int array;
  x_mem : Memory.t;
  x_tlb : Tlb.t;
  x_mmio_base : int;
  x_page_shift : int;
  mutable x_pc : int;
  mutable x_remaining : int;
  mutable x_smmu : bool;
  mutable x_spriv : int;
  mutable x_stop : stop option;
  mutable x_exit : int;
  mutable x_hoist_saved : int;
      (* per-block budget decrements avoided by loop hoisting *)
  x_prof : int array;
      (* per-address retirement counters, length 0 when profiling is
         off.  Blocks credit their full length at the leader on entry;
         the cold exit paths debit the refund, so the net charge is
         exactly the completed instructions on every path. *)
  mutable x_prof_leader : int;  (* leader currently holding the credit *)
}

type entry = {
  e_cost : int;
  e_priv_mask : int;
  e_def : int;  (* region-wide written-register over-approximation *)
  e_run : unit -> unit;
}

type block_listing = { l_leader : int; l_len : int; l_ops : string list }

type region_listing = {
  l_head : int;
  l_cost : int;
  l_priv_mask : int;
  l_blocks : block_listing list;
}

type t = {
  entries : entry option array;
  state : st;
  translated_regions : int;
  translated_blocks : int;
  translated_instrs : int;
  fused : int;
  hoisted_loops : int;  (* loop blocks compiled as batched unrolls *)
  listing : region_listing list;
  untranslated : (int * string) list;
  mutable entries_taken : int;
  mutable threaded_instrs : int;
  mutable fb_budget : int;
  mutable fb_priv : int;
  mutable fb_link : int;
  mutable fb_indirect : int;
  mutable fb_bail : int;
  mutable fb_stop : int;
}

let instr_name i = Format.asprintf "%a" Isa.pp i

(* A mid-block exit refunds the instructions that did not complete:
   the block charged its full length on entry, and [refund] covers the
   failing instruction and everything after it.  [at] is the failing
   instruction's address — the interpreter resumes exactly there.
   The completed-instruction count needs no bookkeeping of its own:
   the dispatch loop derives it as entry budget minus [x_remaining]. *)
let[@inline never] stop_at st refund at s =
  st.x_remaining <- st.x_remaining + refund;
  if Array.length st.x_prof <> 0 then
    st.x_prof.(st.x_prof_leader) <- st.x_prof.(st.x_prof_leader) - refund;
  st.x_pc <- at;
  st.x_stop <- Some s;
  st.x_exit <- exit_stop

let[@inline never] bail_at st refund at =
  st.x_remaining <- st.x_remaining + refund;
  if Array.length st.x_prof <> 0 then
    st.x_prof.(st.x_prof_leader) <- st.x_prof.(st.x_prof_leader) - refund;
  st.x_pc <- at;
  st.x_exit <- exit_bail

(* Staged per-instruction ops, continuation style: every op is a
   BUILDER that bakes its success continuation in at compile time, so
   executing one instruction costs exactly one closure call — this is
   what makes the chain direct-threaded rather than call-threaded.
   [Simple] ops cannot fail (the budget was charged at block entry),
   so adjacent runs fuse into one superinstruction by composing
   builders.  [Mem] ops may stop; their failure paths drop the
   continuation.  [Bail] ops drop it always. *)
type sop =
  | Simple of ((unit -> unit) -> unit -> unit) * string
  | Mem of ((unit -> unit) -> unit -> unit) * string
  | Bail of (unit -> unit) * string

let nothing () = ()
let skip k = k

(* Highest register index the instruction touches.  [classify] refuses
   (bails) any instruction naming a register outside the actual file,
   and that compile-time check is what licenses the unchecked register
   accesses inside the builders below: the interpreter bounds-checks
   every access, the threaded path proves the bound once instead. *)
let max_reg (i : Isa.instr) =
  match i with
  | Isa.Nop | Isa.Halt | Isa.Wfi | Isa.Rfi | Isa.Trapc _ | Isa.Jmp _ -> 0
  | Isa.Ldi (rd, _) -> rd
  | Isa.Alu (_, rd, r1, r2) -> max rd (max r1 r2)
  | Isa.Alui (_, rd, rs, _) -> max rd rs
  | Isa.Ld (rd, rs, _) -> max rd rs
  | Isa.St (rv, rb, _) -> max rv rb
  | Isa.Br (_, r1, r2, _) -> max r1 r2
  | Isa.Jal (rd, _) -> rd
  | Isa.Jr rs -> rs
  | Isa.Probe rd | Isa.Rdtod rd | Isa.Rdtmr rd -> rd
  | Isa.Wrtmr rs | Isa.Out rs -> rs
  | Isa.Mfcr (rd, _) -> rd
  | Isa.Mtcr (_, rs) -> rs
  | Isa.Tlbw (r1, r2) -> max r1 r2

let classify st ~at ~refund (i : Isa.instr) : sop =
  let regs = st.x_regs in
  let nm = instr_name i in
  if max_reg i >= Array.length regs then
    (* out-of-range register: let the interpreter fault on it *)
    Bail ((fun () -> bail_at st refund at), nm)
  else
  match i with
  | Isa.Nop -> Simple (skip, nm)
  | Isa.Ldi (rd, v) ->
    if rd = 0 then Simple (skip, nm)
    else
      let v = Word.mask v in
      Simple ((fun k () -> Array.unsafe_set regs rd v; k ()), nm)
  | Isa.Alu (op, rd, r1, r2) ->
    if rd = 0 then Simple (skip, nm)
    else
      (* specialised per operator: [Word] results are already masked *)
      let build : (unit -> unit) -> unit -> unit =
        match op with
        | Isa.Add ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.add (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
            k ()
        | Isa.Sub ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.sub (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
            k ()
        | Isa.Mul ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.mul (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
            k ()
        | Isa.Divu ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.divu (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
            k ()
        | Isa.Remu ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.remu (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
            k ()
        | Isa.And ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.logand (Array.unsafe_get regs r1)
                 (Array.unsafe_get regs r2));
            k ()
        | Isa.Or ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.logor (Array.unsafe_get regs r1)
                 (Array.unsafe_get regs r2));
            k ()
        | Isa.Xor ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.logxor (Array.unsafe_get regs r1)
                 (Array.unsafe_get regs r2));
            k ()
        | Isa.Sll ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.shift_left (Array.unsafe_get regs r1)
                 (Array.unsafe_get regs r2));
            k ()
        | Isa.Srl ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.shift_right_logical (Array.unsafe_get regs r1)
                 (Array.unsafe_get regs r2));
            k ()
        | Isa.Sra ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.shift_right_arith (Array.unsafe_get regs r1)
                 (Array.unsafe_get regs r2));
            k ()
        | Isa.Slt ->
          fun k () ->
            Array.unsafe_set regs rd
              (if
                 Word.lt_signed (Array.unsafe_get regs r1)
                   (Array.unsafe_get regs r2)
               then 1
               else 0);
            k ()
        | Isa.Sltu ->
          fun k () ->
            Array.unsafe_set regs rd
              (if
                 Word.lt_unsigned (Array.unsafe_get regs r1)
                   (Array.unsafe_get regs r2)
               then 1
               else 0);
            k ()
      in
      Simple (build, nm)
  | Isa.Alui (op, rd, rs, imm) ->
    if rd = 0 then Simple (skip, nm)
    else
      let iv = Word.of_signed imm in
      let build : (unit -> unit) -> unit -> unit =
        match op with
        | Isa.Add ->
          fun k () ->
            Array.unsafe_set regs rd (Word.add (Array.unsafe_get regs rs) iv);
            k ()
        | Isa.Sub ->
          fun k () ->
            Array.unsafe_set regs rd (Word.sub (Array.unsafe_get regs rs) iv);
            k ()
        | Isa.Mul ->
          fun k () ->
            Array.unsafe_set regs rd (Word.mul (Array.unsafe_get regs rs) iv);
            k ()
        | Isa.Divu ->
          fun k () ->
            Array.unsafe_set regs rd (Word.divu (Array.unsafe_get regs rs) iv);
            k ()
        | Isa.Remu ->
          fun k () ->
            Array.unsafe_set regs rd (Word.remu (Array.unsafe_get regs rs) iv);
            k ()
        | Isa.And ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.logand (Array.unsafe_get regs rs) iv);
            k ()
        | Isa.Or ->
          fun k () ->
            Array.unsafe_set regs rd (Word.logor (Array.unsafe_get regs rs) iv);
            k ()
        | Isa.Xor ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.logxor (Array.unsafe_get regs rs) iv);
            k ()
        | Isa.Sll ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.shift_left (Array.unsafe_get regs rs) iv);
            k ()
        | Isa.Srl ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.shift_right_logical (Array.unsafe_get regs rs) iv);
            k ()
        | Isa.Sra ->
          fun k () ->
            Array.unsafe_set regs rd
              (Word.shift_right_arith (Array.unsafe_get regs rs) iv);
            k ()
        | Isa.Slt ->
          fun k () ->
            Array.unsafe_set regs rd
              (if Word.lt_signed (Array.unsafe_get regs rs) iv then 1 else 0);
            k ()
        | Isa.Sltu ->
          fun k () ->
            Array.unsafe_set regs rd
              (if Word.lt_unsigned (Array.unsafe_get regs rs) iv then 1 else 0);
            k ()
      in
      Simple (build, nm)
  | Isa.Probe rd ->
    if rd = 0 then Simple (skip, nm)
    else Simple ((fun k () -> Array.unsafe_set regs rd st.x_spriv; k ()), nm)
  | Isa.Ld (rd, rs, off) ->
    let ov = Word.of_signed off in
    let mem = st.x_mem in
    let mmio = st.x_mmio_base in
    (* memory never resizes, so the bound is a compile-time constant;
       masked addresses are non-negative, so one compare replaces the
       checked [Memory.read] *)
    let msize = Memory.size mem in
    let build k () =
      let vaddr = Word.add (Array.unsafe_get regs rs) ov in
      if not st.x_smmu then begin
        (* MMU off: translation is the identity *)
        if vaddr >= mmio then
          stop_at st refund at (X_mmio_read { paddr = vaddr; reg = rd })
        else if vaddr >= msize then
          stop_at st refund at (X_fault_load vaddr)
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Memory.read_fast mem vaddr);
          k ()
        end
      end
      else begin
        let vpage = vaddr lsr st.x_page_shift in
        match Tlb.lookup st.x_tlb ~vpage with
        | None -> stop_at st refund at (X_tlb_miss { vaddr; write = false })
        | Some e ->
          if st.x_spriv = 3 && not e.Tlb.user_ok then
            stop_at st refund at (X_protection { vaddr; write = false })
          else
            let paddr =
              (e.Tlb.ppage lsl st.x_page_shift)
              lor (vaddr land ((1 lsl st.x_page_shift) - 1))
            in
            if paddr >= mmio then
              stop_at st refund at (X_mmio_read { paddr; reg = rd })
            else if paddr >= msize then
              stop_at st refund at (X_fault_load paddr)
            else begin
              if rd <> 0 then
                Array.unsafe_set regs rd (Memory.read_fast mem paddr);
              k ()
            end
      end
    in
    Mem (build, nm)
  | Isa.St (rv, rb, off) ->
    let ov = Word.of_signed off in
    let mem = st.x_mem in
    let mmio = st.x_mmio_base in
    let msize = Memory.size mem in
    let build k () =
      let vaddr = Word.add (Array.unsafe_get regs rb) ov in
      if not st.x_smmu then begin
        if vaddr >= mmio then
          stop_at st refund at
            (X_mmio_write { paddr = vaddr; value = Array.unsafe_get regs rv })
        else if vaddr >= msize then
          stop_at st refund at (X_fault_store vaddr)
        else begin
          Memory.write_fast mem vaddr (Array.unsafe_get regs rv);
          k ()
        end
      end
      else begin
        let vpage = vaddr lsr st.x_page_shift in
        match Tlb.lookup st.x_tlb ~vpage with
        | None -> stop_at st refund at (X_tlb_miss { vaddr; write = true })
        | Some e ->
          if (st.x_spriv = 3 && not e.Tlb.user_ok) || not e.Tlb.writable then
            stop_at st refund at (X_protection { vaddr; write = true })
          else
            let paddr =
              (e.Tlb.ppage lsl st.x_page_shift)
              lor (vaddr land ((1 lsl st.x_page_shift) - 1))
            in
            if paddr >= mmio then
              stop_at st refund at
                (X_mmio_write { paddr; value = Array.unsafe_get regs rv })
            else if paddr >= msize then
              stop_at st refund at (X_fault_store paddr)
            else begin
              Memory.write_fast mem paddr (Array.unsafe_get regs rv);
              k ()
            end
      end
    in
    Mem (build, nm)
  | Isa.Br _ | Isa.Jmp _ | Isa.Jal _ | Isa.Jr _
  (* control mid-block is a plan bug; bailing keeps it correct *)
  | Isa.Halt | Isa.Wfi
  | Isa.Rdtod _ | Isa.Rdtmr _ | Isa.Wrtmr _ | Isa.Out _
  | Isa.Trapc _
  | Isa.Mfcr _ | Isa.Mtcr _ | Isa.Tlbw _ | Isa.Rfi ->
    Bail ((fun () -> bail_at st refund at), nm)

(* Superinstruction formation: a whole run of simple ops collapses
   into one compile-time builder composition — zero dispatch between
   the member effects at runtime.  The counter records each merged
   pair, so a run of n simples counts n-1 fusions. *)
let rec fuse counter = function
  | Simple (b1, n1) :: Simple (b2, n2) :: rest ->
    incr counter;
    fuse counter (Simple ((fun k -> b1 (b2 k)), n1 ^ " + " ^ n2) :: rest)
  | op :: rest -> op :: fuse counter rest
  | [] -> []

(* Intra-region control transfer: branch targets that are member
   leaders chain directly (the target block re-checks the budget);
   anything else exits to the dispatch loop. *)
let goto st targets target =
  match Hashtbl.find_opt targets target with
  | Some r -> fun () -> !r ()
  | None ->
    fun () ->
      st.x_pc <- target;
      st.x_exit <- exit_link

let br_closure (regs : int array) c r1 r2 taken fall =
  match (c : Isa.cond) with
  | Isa.Eq -> fun () -> if regs.(r1) = regs.(r2) then taken () else fall ()
  | Isa.Ne -> fun () -> if regs.(r1) <> regs.(r2) then taken () else fall ()
  | Isa.Lt ->
    fun () -> if Word.lt_signed regs.(r1) regs.(r2) then taken () else fall ()
  | Isa.Ge ->
    fun () ->
      if not (Word.lt_signed regs.(r1) regs.(r2)) then taken () else fall ()
  | Isa.Ltu ->
    fun () ->
      if Word.lt_unsigned regs.(r1) regs.(r2) then taken () else fall ()
  | Isa.Geu ->
    fun () ->
      if not (Word.lt_unsigned regs.(r1) regs.(r2)) then taken () else fall ()

(* Store-forward superinstruction for the hoisted-loop copies: a load
   that immediately re-reads the address a store just wrote ([St (rv,
   rb, off); Ld (rd, rb, off)], nothing between them) collapses into
   the store plus a register copy.  Exactness: the store's success
   path proves translation, protection, the MMIO window and the
   memory bound for exactly the address the load would use (the base
   register is untouched between them, and a store never changes MMU
   or TLB state), so the load cannot stop and must read back the
   word just written.  [Tlb.lookup]'s only mutation is its host-side
   last-hit memo, which the store leaves pointing at the same page.
   If the store stops, [refund] covers both instructions and the
   interpreter resumes at the store — the pair has not happened. *)
let st_ld_forward st ~at ~refund (rv, rb, off) rd =
  let regs = st.x_regs in
  let ov = Word.of_signed off in
  let mem = st.x_mem in
  let mmio = st.x_mmio_base in
  let msize = Memory.size mem in
  let build k () =
    let vaddr = Word.add (Array.unsafe_get regs rb) ov in
    let v = Array.unsafe_get regs rv in
    if not st.x_smmu then begin
      if vaddr >= mmio then
        stop_at st refund at (X_mmio_write { paddr = vaddr; value = v })
      else if vaddr >= msize then stop_at st refund at (X_fault_store vaddr)
      else begin
        Memory.write_fast mem vaddr v;
        if rd <> 0 then Array.unsafe_set regs rd v;
        k ()
      end
    end
    else begin
      let vpage = vaddr lsr st.x_page_shift in
      match Tlb.lookup st.x_tlb ~vpage with
      | None -> stop_at st refund at (X_tlb_miss { vaddr; write = true })
      | Some e ->
        if (st.x_spriv = 3 && not e.Tlb.user_ok) || not e.Tlb.writable then
          stop_at st refund at (X_protection { vaddr; write = true })
        else
          let paddr =
            (e.Tlb.ppage lsl st.x_page_shift)
            lor (vaddr land ((1 lsl st.x_page_shift) - 1))
          in
          if paddr >= mmio then
            stop_at st refund at (X_mmio_write { paddr; value = v })
          else if paddr >= msize then
            stop_at st refund at (X_fault_store paddr)
          else begin
            Memory.write_fast mem paddr v;
            if rd <> 0 then Array.unsafe_set regs rd v;
            k ()
          end
    end
  in
  Mem (build, Printf.sprintf "st + ld (store-forward)")

(* Unchecked variant for the hoisted-loop copies: the compile-time
   [max_reg] guard on the back branch is what licenses the unsafe
   reads, exactly as in [classify]. *)
let br_closure_unsafe (regs : int array) c r1 r2 taken fall =
  match (c : Isa.cond) with
  | Isa.Eq ->
    fun () ->
      if Array.unsafe_get regs r1 = Array.unsafe_get regs r2 then taken ()
      else fall ()
  | Isa.Ne ->
    fun () ->
      if Array.unsafe_get regs r1 <> Array.unsafe_get regs r2 then taken ()
      else fall ()
  | Isa.Lt ->
    fun () ->
      if Word.lt_signed (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
      then taken ()
      else fall ()
  | Isa.Ge ->
    fun () ->
      if
        not
          (Word.lt_signed (Array.unsafe_get regs r1)
             (Array.unsafe_get regs r2))
      then taken ()
      else fall ()
  | Isa.Ltu ->
    fun () ->
      if
        Word.lt_unsigned (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
      then taken ()
      else fall ()
  | Isa.Geu ->
    fun () ->
      if
        not
          (Word.lt_unsigned (Array.unsafe_get regs r1)
             (Array.unsafe_get regs r2))
      then taken ()
      else fall ()

let def_of (i : Isa.instr) =
  match i with
  | Isa.Ldi (rd, _)
  | Isa.Alu (_, rd, _, _)
  | Isa.Alui (_, rd, _, _)
  | Isa.Ld (rd, _, _)
  | Isa.Jal (rd, _)
  | Isa.Probe rd
  | Isa.Rdtod rd | Isa.Rdtmr rd
  | Isa.Mfcr (rd, _) ->
    if rd = 0 then 0 else 1 lsl rd
  | _ -> 0

let compile_block st code targets counter ~leader ~len =
  let last = leader + len - 1 in
  let term_instr = code.(last) in
  let is_control =
    match term_instr with
    | Isa.Br _ | Isa.Jmp _ | Isa.Jal _ | Isa.Jr _ -> true
    | _ -> false
  in
  let body_len = if is_control then len - 1 else len in
  let term, term_name, term_fusable =
    if is_control then begin
      let nm = instr_name term_instr in
      match term_instr with
      | Isa.Br (c, r1, r2, tgt) ->
        let taken = goto st targets tgt in
        let fall = goto st targets (leader + len) in
        (br_closure st.x_regs c r1 r2 taken fall, nm, true)
      | Isa.Jmp tgt -> (goto st targets tgt, nm, true)
      | Isa.Jal (rd, tgt) ->
        let g = goto st targets tgt in
        if rd = 0 then (g, nm, true)
        else
          (* branch-and-link privilege quirk: the static part of the
             link value is precomputed, the privilege bits are live *)
          let link = Word.mask ((last + 1) lsl 2) in
          let regs = st.x_regs in
          ( (fun () ->
              regs.(rd) <- link lor st.x_spriv;
              g ()),
            nm, true )
      | Isa.Jr rs ->
        let regs = st.x_regs in
        ( (fun () ->
            st.x_pc <- regs.(rs) lsr 2;
            st.x_exit <- exit_indirect),
          nm, false )
      | _ -> assert false
    end
    else
      ( goto st targets (leader + len),
        Printf.sprintf "fall-through -> %d" (leader + len),
        false )
  in
  let ops =
    List.init body_len (fun idx ->
        classify st ~at:(leader + idx) ~refund:(len - idx) code.(leader + idx))
  in
  let ops = fuse counter ops in
  (* the trailing op fuses into a direct-jump terminator — the
     compare-and-branch (or load-and-branch) superinstruction; a
     [Mem]'s failure paths already ignore the continuation, so it
     composes as safely as a simple op *)
  let ops, term, term_name =
    if term_fusable then
      match List.rev ops with
      | (Simple (b, nm) | Mem (b, nm)) :: rev_rest ->
        incr counter;
        (List.rev rev_rest, b term, nm ^ " + " ^ term_name)
      | _ -> (ops, term, term_name)
    else (ops, term, term_name)
  in
  let body =
    List.fold_left
      (fun k op ->
        match op with
        | Simple (build, _) | Mem (build, _) -> build k
        | Bail (b, _) -> b)
      term (List.rev ops)
  in
  let defm = ref 0 in
  for a = leader to last do
    defm := !defm lor def_of code.(a)
  done;
  let defm = !defm in
  (* the block prologue is the only per-block overhead on the hot
     path: one budget compare and one decrement.  Written-register and
     completed-count accounting live at the dispatch entry instead.
     Under profiling a specialised prologue credits the whole block at
     the leader (the cold exits debit refunds), keeping the hot path
     free of the check when profiling is off. *)
  let blk =
    if Array.length st.x_prof <> 0 then begin
      let p = st.x_prof in
      fun () ->
        if st.x_remaining < len then begin
          st.x_pc <- leader;
          st.x_exit <- exit_budget
        end
        else begin
          st.x_remaining <- st.x_remaining - len;
          p.(leader) <- p.(leader) + len;
          st.x_prof_leader <- leader;
          body ()
        end
    end
    else
      fun () ->
        if st.x_remaining < len then begin
          st.x_pc <- leader;
          st.x_exit <- exit_budget
        end
        else begin
          st.x_remaining <- st.x_remaining - len;
          body ()
        end
  in
  let names =
    List.map (function Simple (_, n) | Mem (_, n) | Bail (_, n) -> n) ops
    @ [ term_name ]
  in
  (blk, defm, { l_leader = leader; l_len = len; l_ops = names })

(* Loop hoisting: a single-block counted loop whose certified trip
   bound licenses batching the per-iteration budget prologue.  The
   body is unrolled [k = min (bound, max_unroll)] times with the
   copies chained directly, so a batch pays one budget compare and one
   decrement where the plain block pays one per iteration.  Exactness
   survives every exit: the batch charges [k * len] up front, the
   loop-exit edge of copy [j] refunds the [k-1-j] unexecuted copies,
   and memory stops or bails inside copy [j] refund from their own
   offset — the dispatch loop's [budget - x_remaining] derivation of
   the completed count never drifts.  When the remaining budget cannot
   cover a whole batch the group entry falls back to the plain
   one-iteration block, which drains the tail one prologue at a time.

   The certificate is what makes this safe to *plan*, not what makes
   it correct: even a wrong bound only mis-sizes the batch, it cannot
   corrupt the accounting.  Hoisting simply spends the certificate
   where it pays — bounded loops are where block-granular budget
   checks cluster. *)
let max_unroll = 16

let compile_hoisted_block st code targets counter ~leader ~len ~bound =
  let last = leader + len - 1 in
  match code.(last) with
  | Isa.Br (c, r1, r2, tgt)
    when tgt = leader && bound >= 2
         && max_reg code.(last) < Array.length st.x_regs ->
    let plain_blk, defm, listing =
      compile_block st code targets counter ~leader ~len
    in
    let k = min bound max_unroll in
    let fall_target = goto st targets (leader + len) in
    let reenter = goto st targets leader in
    (* copy fusions would k-plicate the [fused] stat; count the plain
       block's only *)
    let scratch = ref 0 in
    let build_copy j next =
      (* the copy-to-copy edge is a direct call — nothing happens on
         it at runtime; the batch entry credits the [k - 1] avoided
         prologues and the (cold) early-exit edges debit the ones
         that did not happen after all *)
      let taken = match next with Some body -> body | None -> reenter in
      let fall =
        if j = k - 1 then fall_target
        else begin
          let refund = (k - 1 - j) * len in
          let unchained = k - 1 - j in
          fun () ->
            st.x_remaining <- st.x_remaining + refund;
            st.x_hoist_saved <- st.x_hoist_saved - unchained;
            fall_target ()
        end
      in
      let term = br_closure_unsafe st.x_regs c r1 r2 taken fall in
      let nregs = Array.length st.x_regs in
      let rec body_ops idx =
        if idx >= len - 1 then []
        else
          let refund = ((k - j) * len) - idx in
          match code.(leader + idx) with
          | Isa.St (rv, rb, off)
            when idx + 1 < len - 1
                 && (match code.(leader + idx + 1) with
                    | Isa.Ld (_, rb', off') -> rb' = rb && off' = off
                    | _ -> false)
                 && max_reg code.(leader + idx) < nregs
                 && max_reg code.(leader + idx + 1) < nregs ->
            let rd =
              match code.(leader + idx + 1) with
              | Isa.Ld (rd, _, _) -> rd
              | _ -> assert false
            in
            st_ld_forward st ~at:(leader + idx) ~refund (rv, rb, off) rd
            :: body_ops (idx + 2)
          | i ->
            classify st ~at:(leader + idx) ~refund i :: body_ops (idx + 1)
      in
      let ops = body_ops 0 in
      let ops = fuse scratch ops in
      let ops, term =
        match List.rev ops with
        | (Simple (b, _) | Mem (b, _)) :: rev_rest ->
          (List.rev rev_rest, b term)
        | _ -> (ops, term)
      in
      List.fold_left
        (fun kont op ->
          match op with
          | Simple (build, _) | Mem (build, _) -> build kont
          | Bail (b, _) -> b)
        term (List.rev ops)
    in
    let rec chain j =
      if j = k - 1 then build_copy j None
      else build_copy j (Some (chain (j + 1)))
    in
    let copy0 = chain 0 in
    let batch = k * len in
    let group () =
      if st.x_remaining < batch then plain_blk ()
      else begin
        st.x_remaining <- st.x_remaining - batch;
        st.x_hoist_saved <- st.x_hoist_saved + (k - 1);
        copy0 ()
      end
    in
    Some
      ( group,
        defm,
        {
          listing with
          l_ops =
            listing.l_ops
            @ [ Printf.sprintf "loop hoisted: %d-way batch (bound %d)" k bound ];
        } )
  | _ -> None

let compile_region st code counter (r : plan_region) =
  let n = Array.length code in
  if
    not
      (List.for_all
         (fun b -> b.pb_leader >= 0 && b.pb_len > 0 && b.pb_leader + b.pb_len <= n)
         r.pr_blocks)
  then Error "member block outside the code image"
  else
    match List.find_opt (fun b -> b.pb_leader = r.pr_head) r.pr_blocks with
    | None -> Error "head block missing from the member list"
    | Some head_blk ->
      if
        match Isa.classify code.(r.pr_head) with
        | Isa.Ordinary -> false
        | _ -> true
      then
        Error
          (Printf.sprintf "head begins with non-ordinary instruction %s"
             (instr_name code.(r.pr_head)))
      else begin
        (* two passes: allocate a slot per member leader, then compile
           each block and back-patch, so intra-region branches chain
           through the slot without a dispatch round-trip *)
        let targets = Hashtbl.create (List.length r.pr_blocks * 2) in
        List.iter
          (fun b -> Hashtbl.replace targets b.pb_leader (ref nothing))
          r.pr_blocks;
        let region_def = ref 0 in
        let hoisted = ref 0 in
        let blocks =
          List.map
            (fun b ->
              (* hoisting batches k iterations under one prologue; its
                 mid-batch refund paths would need per-copy leader
                 bookkeeping to stay exact, so profiling simply
                 disables it — exactness beats speed while measuring *)
              let hoist =
                if Array.length st.x_prof <> 0 then None
                else
                  List.find_opt
                    (fun pl -> pl.pl_leader = b.pb_leader)
                    r.pr_loops
              in
              let blk, defm, l =
                match
                  Option.bind hoist (fun pl ->
                      compile_hoisted_block st code targets counter
                        ~leader:b.pb_leader ~len:b.pb_len ~bound:pl.pl_bound)
                with
                | Some res ->
                  incr hoisted;
                  res
                | None ->
                  compile_block st code targets counter ~leader:b.pb_leader
                    ~len:b.pb_len
              in
              region_def := !region_def lor defm;
              (match Hashtbl.find_opt targets b.pb_leader with
              | Some slot -> slot := blk
              | None -> ());
              l)
            r.pr_blocks
        in
        (* every member leader whose first instruction is ordinary is
           a dispatch entry point, not just the head: a budget exit
           parks the pc on a member leader, and the next run must be
           able to re-enter there instead of interpreting the rest of
           the region.  The certificate precheck is region-wide, so it
           holds at any member. *)
        let entry_points =
          List.filter_map
            (fun b ->
              match Isa.classify code.(b.pb_leader) with
              | Isa.Ordinary ->
                Some
                  ( b.pb_leader,
                    {
                      e_cost = b.pb_len;
                      e_priv_mask = r.pr_priv_mask;
                      e_def = !region_def;
                      e_run = !(Hashtbl.find targets b.pb_leader);
                    } )
              | _ -> None)
            r.pr_blocks
        in
        Ok
          ( entry_points,
            {
              l_head = r.pr_head;
              l_cost = head_blk.pb_len;
              l_priv_mask = r.pr_priv_mask;
              l_blocks = blocks;
            },
            !hoisted )
      end

let compile ~code ~regs ~mem ~tlb ~mmio_base ~page_shift ?profile plan =
  let n = Array.length code in
  let st =
    {
      x_regs = regs;
      x_mem = mem;
      x_tlb = tlb;
      x_mmio_base = mmio_base;
      x_page_shift = page_shift;
      x_pc = 0;
      x_remaining = 0;
      x_smmu = false;
      x_spriv = 0;
      x_stop = None;
      x_exit = exit_budget;
      x_hoist_saved = 0;
      x_prof = (match profile with Some p -> p | None -> [||]);
      x_prof_leader = 0;
    }
  in
  let entries = Array.make (max n 1) None in
  let counter = ref 0 in
  let regions = ref 0 and blocks = ref 0 and instrs = ref 0 in
  let hoisted = ref 0 in
  let listing = ref [] and untranslated = ref [] in
  List.iter
    (fun (r : plan_region) ->
      if r.pr_head < 0 || r.pr_head >= n then
        untranslated := (r.pr_head, "head outside the code image") :: !untranslated
      else
        match compile_region st code counter r with
        | Error reason -> untranslated := (r.pr_head, reason) :: !untranslated
        | Ok (entry_points, rl, h) ->
          List.iter (fun (leader, e) -> entries.(leader) <- Some e) entry_points;
          incr regions;
          blocks := !blocks + List.length r.pr_blocks;
          instrs :=
            !instrs + List.fold_left (fun a b -> a + b.pb_len) 0 r.pr_blocks;
          hoisted := !hoisted + h;
          listing := rl :: !listing)
    plan;
  {
    entries;
    state = st;
    translated_regions = !regions;
    translated_blocks = !blocks;
    translated_instrs = !instrs;
    fused = !counter;
    hoisted_loops = !hoisted;
    listing = List.rev !listing;
    untranslated = List.rev !untranslated;
    entries_taken = 0;
    threaded_instrs = 0;
    fb_budget = 0;
    fb_priv = 0;
    fb_link = 0;
    fb_indirect = 0;
    fb_bail = 0;
    fb_stop = 0;
  }

let note_entry_refused_budget t = t.fb_budget <- t.fb_budget + 1
let note_entry_refused_priv t = t.fb_priv <- t.fb_priv + 1

let note_exit t =
  let x = t.state.x_exit in
  if x = exit_budget then t.fb_budget <- t.fb_budget + 1
  else if x = exit_link then t.fb_link <- t.fb_link + 1
  else if x = exit_indirect then t.fb_indirect <- t.fb_indirect + 1
  else if x = exit_bail then t.fb_bail <- t.fb_bail + 1
  else t.fb_stop <- t.fb_stop + 1

let pp_priv_mask fmt m =
  if m = -1 then Format.fprintf fmt "any"
  else Format.fprintf fmt "0x%x" (m land 0xF)

let pp_listing fmt t =
  Format.fprintf fmt
    "translation: %d superblocks, %d blocks, %d instructions, %d fused \
     superinstructions, %d hoisted loops@."
    t.translated_regions t.translated_blocks t.translated_instrs t.fused
    t.hoisted_loops;
  List.iter
    (fun r ->
      Format.fprintf fmt
        "@.superblock @@%d: entry cost %d, entry priv mask %a@." r.l_head
        r.l_cost pp_priv_mask r.l_priv_mask;
      List.iter
        (fun b ->
          Format.fprintf fmt "  block %d..%d:@." b.l_leader
            (b.l_leader + b.l_len - 1);
          List.iter (fun op -> Format.fprintf fmt "    %s@." op) b.l_ops)
        r.l_blocks)
    t.listing;
  if t.untranslated <> [] then begin
    Format.fprintf fmt "@.untranslated (interpreter fallback):@.";
    List.iter
      (fun (head, reason) ->
        Format.fprintf fmt "  @@%d: %s@." head reason)
      t.untranslated
  end
