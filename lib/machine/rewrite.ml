let epoch_marker_code = 255

(* Software instruction counting needs a register the compiler (here:
   the workload author) agrees not to use; the guest kernel's
   interrupt handler already treats r13-r15 as scratch it saves and
   restores, so r15 is free. *)
let counter_reg = 15

type t = { code : Isa.instr array; markers : int; map : int array }

(* Instrumentation sites: every [every] static instructions, plus
   every target of a backward branch.  The second rule is what makes
   the scheme sound: without it, a loop that fits between two static
   sites would never be counted and its epoch would never end —
   production object-code editors instrument back-edges for exactly
   this reason.

   A loop closed through an indirect jump ([Jr]) has no static
   backward branch for that rule to see, so the third rule
   conservatively instruments every address a [Jr] might land on: for
   each register some [Jr] consumes, each [Jal] return point linked
   through it and each immediate loaded into it that decodes to a code
   address.  A [Jr] whose register has other defs (loads, ALU results)
   cannot be bounded statically at all; {!Hft_analysis.Epoch} rejects
   such programs before they are rewritten. *)
let site_list ~every (code : Isa.instr array) =
  if every < 1 then invalid_arg "Rewrite: epoch interval must be positive";
  let n = Array.length code in
  let sites = Hashtbl.create 64 in
  for i = 1 to n - 1 do
    if i mod every = 0 then Hashtbl.replace sites i ()
  done;
  Array.iteri
    (fun i instr ->
      let backward tgt = tgt <= i && tgt > 0 in
      match instr with
      | Isa.Br (_, _, _, tgt) when backward tgt -> Hashtbl.replace sites tgt ()
      | Isa.Jmp tgt when backward tgt -> Hashtbl.replace sites tgt ()
      | Isa.Jal (_, tgt) when backward tgt -> Hashtbl.replace sites tgt ()
      | _ -> ())
    code;
  let jr_regs = Array.make Isa.num_regs false in
  Array.iter
    (function
      | Isa.Jr rs when rs <> 0 -> jr_regs.(rs) <- true
      | _ -> ())
    code;
  Array.iteri
    (fun i instr ->
      match instr with
      | Isa.Jal (rd, _) when rd <> 0 && jr_regs.(rd) && i + 1 < n ->
        Hashtbl.replace sites (i + 1) ()
      | Isa.Ldi (rd, v) when rd <> 0 && jr_regs.(rd) ->
        let t = v lsr 2 in
        if t > 0 && t < n then Hashtbl.replace sites t ()
      | _ -> ())
    code;
  sites

(* Each site receives a three-instruction counting sequence:

     subi  r15, r15, W      W ~ instructions since the previous site
     bge   r15, r0, +3      still within the epoch budget: skip
     trapc 255              epoch marker: invoke the hypervisor

   The hypervisor reloads r15 with the epoch length at every marker,
   so a marker fires roughly every [epoch_length] dynamic
   instructions — the software analogue of the recovery register.
   The weights are static approximations; they only need to be the
   same at the primary and the backup, and they are, because both run
   the same rewritten image. *)
let block_len = 3

let insert_epoch_markers ~every (p : Asm.program) =
  if every < 1 then invalid_arg "Rewrite.insert_epoch_markers: every < 1";
  Array.iter
    (function
      | Isa.Trapc c when c = epoch_marker_code ->
        invalid_arg "Rewrite.insert_epoch_markers: program uses the marker code"
      | _ -> ())
    p.Asm.code;
  let n = Array.length p.Asm.code in
  let sites = site_list ~every p.Asm.code in
  (* new address of each original instruction *)
  let map = Array.make n 0 in
  let blocks = ref 0 in
  for i = 0 to n - 1 do
    if Hashtbl.mem sites i then incr blocks;
    map.(i) <- i + (block_len * !blocks)
  done;
  let total_blocks = !blocks in
  (* control transfers to a site must land ON its counting sequence,
     or a loop would be counted only on first entry *)
  let relocate addr =
    if addr >= 0 && addr < n then
      if Hashtbl.mem sites addr then map.(addr) - block_len else map.(addr)
    else addr + (block_len * total_blocks)
  in
  let is_code_ref =
    let tbl = Hashtbl.create 16 in
    List.iter (fun a -> Hashtbl.replace tbl a ()) p.Asm.code_refs;
    fun a -> Hashtbl.mem tbl a
  in
  (* weight of a site: static distance to the previous site *)
  let sorted_sites =
    Hashtbl.fold (fun k () acc -> k :: acc) sites []
    |> List.sort Int.compare
  in
  let weights = Hashtbl.create 64 in
  let prev = ref 0 in
  List.iter
    (fun s ->
      Hashtbl.replace weights s (max 1 (min 32767 (s - !prev)));
      prev := s)
    sorted_sites;
  let out = ref [] in
  Array.iteri
    (fun i instr ->
      if Hashtbl.mem sites i then begin
        let w = Hashtbl.find weights i in
        let skip_to = map.(i) in
        out :=
          Isa.Trapc epoch_marker_code
          :: Isa.Br (Isa.Ge, counter_reg, 0, skip_to)
          :: Isa.Alui (Isa.Sub, counter_reg, counter_reg, w)
          :: !out
      end;
      let instr =
        match instr with
        | Isa.Br (c, a, b, tgt) -> Isa.Br (c, a, b, relocate tgt)
        | Isa.Jmp tgt -> Isa.Jmp (relocate tgt)
        | Isa.Jal (rd, tgt) -> Isa.Jal (rd, relocate tgt)
        | Isa.Ldi (rd, v) when is_code_ref i -> Isa.Ldi (rd, relocate v)
        | other -> other
      in
      out := instr :: !out)
    p.Asm.code;
  { code = Array.of_list (List.rev !out); markers = total_blocks; map }

let rewrite_program ~every p =
  let sites = site_list ~every p.Asm.code in
  let { code; map; markers } = insert_epoch_markers ~every p in
  let relocate_label addr =
    if addr >= 0 && addr < Array.length map then
      if Hashtbl.mem sites addr then map.(addr) - block_len else map.(addr)
    else addr + (block_len * markers)
  in
  (* Re-assemble through the Asm front door so the result is a proper
     program value: emit the instructions and re-declare the labels
     (and comment source lines) at their relocated positions. *)
  let by_addr = Hashtbl.create 16 in
  List.iter
    (fun (name, addr) ->
      let addr = relocate_label addr in
      Hashtbl.replace by_addr addr
        (name :: (try Hashtbl.find by_addr addr with Not_found -> [])))
    p.Asm.labels;
  let cmt_by_addr = Hashtbl.create 16 in
  List.iter
    (fun (addr, text) ->
      if addr >= 0 && addr < Array.length map then
        Hashtbl.replace cmt_by_addr map.(addr) text)
    p.Asm.srclines;
  let acc = ref [] in
  Array.iteri
    (fun addr instr ->
      (match Hashtbl.find_opt by_addr addr with
      | Some names -> List.iter (fun nm -> acc := Asm.label nm :: !acc) names
      | None -> ());
      (match Hashtbl.find_opt cmt_by_addr addr with
      | Some text -> acc := Asm.comment text :: !acc
      | None -> ());
      acc := Asm.insn instr :: !acc)
    code;
  (match Hashtbl.find_opt by_addr (Array.length code) with
  | Some names -> List.iter (fun nm -> acc := Asm.label nm :: !acc) names
  | None -> ());
  Asm.assemble (List.rev !acc)
