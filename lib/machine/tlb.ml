type policy = Round_robin | Random of Hft_sim.Rng.t

type entry = { vpage : int; ppage : int; user_ok : bool; writable : bool }

type t = {
  policy : policy;
  slots : entry option array;
  mutable next_victim : int;
  mutable last_hit : entry option;
      (* one-entry MRU cache over [lookup]; sound because [insert]
         keeps vpages unique among slots and invalidates it *)
}

let create ?(entries = 16) policy =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  { policy; slots = Array.make entries None; next_victim = 0; last_hit = None }

let size t = Array.length t.slots

let lookup t ~vpage =
  match t.last_hit with
  | Some e when e.vpage = vpage -> t.last_hit
  | _ ->
    let n = Array.length t.slots in
    let rec scan i =
      if i >= n then None
      else
        match t.slots.(i) with
        | Some e when e.vpage = vpage ->
          t.last_hit <- t.slots.(i);
          t.slots.(i)
        | _ -> scan (i + 1)
    in
    scan 0

let find_slot t vpage =
  (* Prefer the slot already holding this vpage, then an invalid slot,
     then a victim chosen by the policy. *)
  let n = Array.length t.slots in
  let existing = ref None and free = ref None in
  for i = n - 1 downto 0 do
    match t.slots.(i) with
    | Some e when e.vpage = vpage -> existing := Some i
    | None -> free := Some i
    | Some _ -> ()
  done;
  match (!existing, !free) with
  | Some i, _ -> i
  | None, Some i -> i
  | None, None -> (
    match t.policy with
    | Round_robin ->
      let i = t.next_victim in
      t.next_victim <- (i + 1) mod n;
      i
    | Random rng -> Hft_sim.Rng.int rng n)

let insert t entry =
  let i = find_slot t entry.vpage in
  t.slots.(i) <- Some entry;
  t.last_hit <- None

let flush t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next_victim <- 0;
  t.last_hit <- None

let entries t =
  Array.to_list t.slots |> List.filter_map (fun e -> e)

let fnv_prime = 0x100000001b3
let fnv_mask = (1 lsl 62) - 1

let hash_into t seed =
  let h = ref seed in
  let mix v = h := (!h lxor v) * fnv_prime land fnv_mask in
  Array.iter
    (function
      | None -> mix 0x5ca1ab1e
      | Some e ->
        mix e.vpage;
        mix e.ppage;
        mix (Bool.to_int e.user_ok);
        mix (Bool.to_int e.writable))
    t.slots;
  !h

let entry_word ~ppage ~user_ok ~writable =
  Word.mask
    (ppage land 0xFFFFF
    lor (if user_ok then 1 lsl 20 else 0)
    lor if writable then 1 lsl 21 else 0)

let decode_entry_word ~vpage w =
  {
    vpage;
    ppage = w land 0xFFFFF;
    user_ok = w land (1 lsl 20) <> 0;
    writable = w land (1 lsl 21) <> 0;
  }
