type t = int

let m32 = 0xFFFF_FFFF
let sign_bit = 0x8000_0000

let[@inline] mask v = v land m32

let[@inline] signed v = if v land sign_bit <> 0 then v - 0x1_0000_0000 else v

let[@inline] of_signed v = v land m32

let[@inline] add a b = (a + b) land m32
let[@inline] sub a b = (a - b) land m32
let mul a b = (a * b) land m32

let divu a b = if b = 0 then m32 else a / b
let remu a b = if b = 0 then a else a mod b

let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b

let shift_left a n = (a lsl (n land 31)) land m32
let shift_right_logical a n = a lsr (n land 31)

let shift_right_arith a n =
  let n = n land 31 in
  of_signed (signed a asr n)

let lt_signed a b = signed a < signed b
let lt_unsigned (a : t) b = a < b

let pp fmt v = Format.fprintf fmt "0x%08x" v
