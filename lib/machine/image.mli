(** Program images: a stable on-disk format for guest code.

    An image is a small text format — a header line followed by one
    hex-encoded {!Encode} word per instruction, with optional label
    lines — so images diff cleanly, survive version control, and can
    be inspected by hand:

    {v
    HFT1 <instruction count>
    M <json>                  (at most one, embedded manifest)
    L <name> <address>        (zero or more)
    R <address>               (zero or more, relocatable immediates)
    C <address> <text>        (zero or more, comment source lines)
    <16 hex digits>           (one per instruction)
    v}

    Labels and comment lines survive the round trip so the static
    analyzers ({!Hft_analysis}) can cite [label+offset] locations on a
    reloaded image exactly as on a freshly assembled one.

    An image may embed its compilation manifest (an
    [hftsim-manifest/1] JSON document on one [M] line).  The machine
    layer carries it as an opaque string — parsing, validation against
    the image hash, and certificate installation live in
    [Hft_analysis.Manifest], which this library cannot depend on.

    Used by the CLI to export and re-import workloads, and by tests to
    round-trip programs through the encoder. *)

exception Format_error of string

val to_string : ?manifest:string -> Asm.program -> string
val of_string : string -> Asm.program
(** @raise Format_error on a malformed image.
    @raise Encode.Decode_error on an invalid instruction word. *)

val manifest_of_string : string -> string option
(** The embedded manifest line, verbatim, if the image carries one. *)

val save : ?manifest:string -> path:string -> Asm.program -> unit
val load : path:string -> Asm.program

val load_with_manifest : path:string -> Asm.program * string option
