(** Program images: a stable on-disk format for guest code.

    An image is a small text format — a header line followed by one
    hex-encoded {!Encode} word per instruction, with optional label
    lines — so images diff cleanly, survive version control, and can
    be inspected by hand:

    {v
    HFT1 <instruction count>
    L <name> <address>        (zero or more)
    R <address>               (zero or more, relocatable immediates)
    C <address> <text>        (zero or more, comment source lines)
    <16 hex digits>           (one per instruction)
    v}

    Labels and comment lines survive the round trip so the static
    analyzers ({!Hft_analysis}) can cite [label+offset] locations on a
    reloaded image exactly as on a freshly assembled one.

    Used by the CLI to export and re-import workloads, and by tests to
    round-trip programs through the encoder. *)

exception Format_error of string

val to_string : Asm.program -> string
val of_string : string -> Asm.program
(** @raise Format_error on a malformed image.
    @raise Encode.Decode_error on an invalid instruction word. *)

val save : path:string -> Asm.program -> unit
val load : path:string -> Asm.program
