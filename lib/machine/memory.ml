(* Dirty-page tracking.

   The lockstep protocol hashes the whole guest memory at every epoch
   boundary, and reintegration snapshots copy it.  Both costs are
   proportional to memory size, not to how much the guest actually
   wrote — at the paper's EL=1024 the simulator would spend far more
   host time hashing than executing.  So memory keeps two per-page
   dirty bitmaps keyed to the page size of the owning CPU's config:

   - [stale] invalidates the cached per-page FNV digest; [digest]
     re-hashes only stale pages and folds the cached digests of the
     rest.  The digest is a pure function of the word contents (the
     fold order is fixed), so the incremental result is always equal
     to a from-scratch [full_digest] — that equivalence is what keeps
     primary and backup comparable whichever scheme each side uses.
   - [snap_dirty] records pages written since the last [clear_dirty],
     which the CPU snapshot path uses to copy only the delta since the
     previous snapshot. *)

type t = {
  words : int array;
  page_shift : int;
  pages : int;
  page_digests : int array;
  stale : bool array; (* page digest cache invalid *)
  mutable clean : bool; (* no write since [digest_cache] was computed *)
  mutable digest_cache : int;
  snap_dirty : bool array; (* page written since last [clear_dirty] *)
  (* cumulative work counters, drained by [take_hash_work] *)
  mutable pages_hashed : int;
  mutable pages_skipped : int;
}

let default_page_shift = 10

let create ?(page_shift = default_page_shift) ~words () =
  if words <= 0 then invalid_arg "Memory.create: size must be positive";
  if page_shift < 0 || page_shift > 30 then
    invalid_arg "Memory.create: bad page_shift";
  let pages = (words + (1 lsl page_shift) - 1) lsr page_shift in
  {
    words = Array.make words 0;
    page_shift;
    pages;
    page_digests = Array.make pages 0;
    stale = Array.make pages true;
    clean = false;
    digest_cache = 0;
    snap_dirty = Array.make pages true;
    pages_hashed = 0;
    pages_skipped = 0;
  }

let size t = Array.length t.words
let page_shift t = t.page_shift
let pages t = t.pages

let page_words t p =
  if p < 0 || p >= t.pages then invalid_arg "Memory.page_words: bad page";
  min (1 lsl t.page_shift) (Array.length t.words - (p lsl t.page_shift))

let[@inline] in_range t addr = addr >= 0 && addr < Array.length t.words

let[@inline never] oob op addr =
  invalid_arg (Printf.sprintf "Memory.%s: address 0x%x out of range" op addr)

let[@inline] read t addr =
  if not (in_range t addr) then oob "read" addr;
  t.words.(addr)

let[@inline] mark t addr =
  let p = addr lsr t.page_shift in
  t.stale.(p) <- true;
  t.snap_dirty.(p) <- true;
  t.clean <- false

let[@inline] write t addr v =
  if not (in_range t addr) then oob "write" addr;
  t.words.(addr) <- Word.mask v;
  mark t addr

(* Unchecked fast paths for the translated-code engine (Translate):
   the caller has already proved [0 <= addr < size t] — masked words
   are non-negative, so one compare against [size] suffices — and, for
   writes, that [v] is already a masked word (register values are).
   Dirty-page tracking is identical to [write]. *)
let[@inline] read_fast t addr = Array.unsafe_get t.words addr

let[@inline] write_fast t addr v =
  Array.unsafe_set t.words addr v;
  let p = addr lsr t.page_shift in
  Array.unsafe_set t.stale p true;
  Array.unsafe_set t.snap_dirty p true;
  t.clean <- false

let mark_range t ~addr ~len =
  if len > 0 then begin
    let first = addr lsr t.page_shift
    and last = (addr + len - 1) lsr t.page_shift in
    for p = first to last do
      t.stale.(p) <- true;
      t.snap_dirty.(p) <- true
    done;
    t.clean <- false
  end

let blit_in t ~addr block =
  let len = Array.length block in
  if addr < 0 || addr + len > Array.length t.words then
    invalid_arg "Memory.blit_in: block out of range";
  Array.blit block 0 t.words addr len;
  mark_range t ~addr ~len

let blit_out t ~addr ~len =
  if addr < 0 || len < 0 || addr + len > Array.length t.words then
    invalid_arg "Memory.blit_out: block out of range";
  Array.sub t.words addr len

let copy t =
  {
    words = Array.copy t.words;
    page_shift = t.page_shift;
    pages = t.pages;
    page_digests = Array.copy t.page_digests;
    stale = Array.copy t.stale;
    clean = t.clean;
    digest_cache = t.digest_cache;
    snap_dirty = Array.copy t.snap_dirty;
    pages_hashed = 0;
    pages_skipped = 0;
  }

let blit_from t ~src =
  if Array.length t.words <> Array.length src.words then
    invalid_arg "Memory.blit_from: size mismatch";
  if t != src then begin
    Array.blit src.words 0 t.words 0 (Array.length src.words);
    if t.page_shift = src.page_shift then begin
      (* adopt the source's digest caches so a restore costs no
         re-hashing beyond what the source already owed *)
      Array.blit src.page_digests 0 t.page_digests 0 t.pages;
      Array.blit src.stale 0 t.stale 0 t.pages;
      t.digest_cache <- src.digest_cache;
      t.clean <- src.clean
    end
    else begin
      Array.fill t.stale 0 t.pages true;
      t.clean <- false
    end;
    (* relative to this memory's snapshot base, everything changed *)
    Array.fill t.snap_dirty 0 t.pages true
  end

let copy_page ~src ~dst p =
  if
    src.page_shift <> dst.page_shift
    || Array.length src.words <> Array.length dst.words
  then invalid_arg "Memory.copy_page: geometry mismatch";
  if p < 0 || p >= src.pages then invalid_arg "Memory.copy_page: bad page";
  let lo = p lsl src.page_shift in
  let len = min (1 lsl src.page_shift) (Array.length src.words - lo) in
  Array.blit src.words lo dst.words lo len;
  dst.page_digests.(p) <- src.page_digests.(p);
  dst.stale.(p) <- src.stale.(p);
  dst.snap_dirty.(p) <- true;
  dst.clean <- false

let equal a b =
  let n = Array.length a.words in
  n = Array.length b.words
  &&
  let i = ref 0 in
  while !i < n && a.words.(!i) = b.words.(!i) do
    incr i
  done;
  !i = n

let fnv_prime = 0x100000001b3
let fnv_mask = (1 lsl 62) - 1

(* distinct bases for the word-level and page-level folds, so a page
   digest can never be mistaken for a fold of page digests *)
let page_basis = 0x3bf29ce484222325
let digest_basis = 0x27d4eb2f165667c5

let hash_page t p =
  let lo = p lsl t.page_shift in
  let hi = min (lo + (1 lsl t.page_shift)) (Array.length t.words) in
  let words = t.words in
  let h = ref page_basis in
  for i = lo to hi - 1 do
    h := (!h lxor words.(i)) * fnv_prime land fnv_mask
  done;
  !h

let fold_pages digests pages =
  let h = ref digest_basis in
  for p = 0 to pages - 1 do
    h := (!h lxor digests.(p)) * fnv_prime land fnv_mask
  done;
  !h

let digest t =
  if t.clean then begin
    t.pages_skipped <- t.pages_skipped + t.pages;
    t.digest_cache
  end
  else begin
    for p = 0 to t.pages - 1 do
      if t.stale.(p) then begin
        t.page_digests.(p) <- hash_page t p;
        t.stale.(p) <- false;
        t.pages_hashed <- t.pages_hashed + 1
      end
      else t.pages_skipped <- t.pages_skipped + 1
    done;
    t.digest_cache <- fold_pages t.page_digests t.pages;
    t.clean <- true;
    t.digest_cache
  end

let full_digest t =
  let h = ref digest_basis in
  for p = 0 to t.pages - 1 do
    h := (!h lxor hash_page t p) * fnv_prime land fnv_mask
  done;
  t.pages_hashed <- t.pages_hashed + t.pages;
  !h

let hash_into t seed = (seed lxor digest t) * fnv_prime land fnv_mask

let take_hash_work t =
  let r = (t.pages_hashed, t.pages_skipped) in
  t.pages_hashed <- 0;
  t.pages_skipped <- 0;
  r

let dirty_pages t =
  let acc = ref [] in
  for p = t.pages - 1 downto 0 do
    if t.snap_dirty.(p) then acc := p :: !acc
  done;
  !acc

let clear_dirty t = Array.fill t.snap_dirty 0 t.pages false

let load t ~addr words = blit_in t ~addr (Array.of_list words)
