(** Physical data memory: a flat array of 32-bit words, with per-page
    dirty tracking for incremental hashing and delta snapshots.

    Addresses are word indices.  The region at and above the MMIO base
    (see {!Cpu.config}) is not backed by this array; accesses there are
    routed to devices by the executor.

    Every mutation ([write]/[blit_in]/[load]) marks the containing
    page(s) dirty in two independent bitmaps: one invalidates the
    cached per-page FNV digest used by {!digest}, the other feeds
    {!dirty_pages}/{!clear_dirty} so snapshots can copy only the pages
    written since the previous snapshot. *)

type t

val create : ?page_shift:int -> words:int -> unit -> t
(** Zero-initialised memory of [words] words, tracked in pages of
    [2{^page_shift}] words (default 10, matching
    {!Cpu.default_config}).  The last page may be partial when [words]
    is not a multiple of the page size. *)

val size : t -> int

val page_shift : t -> int

val pages : t -> int
(** Number of tracked pages ([ceil (size / 2^page_shift)]). *)

val page_words : t -> int -> int
(** Words in page [p] (smaller than [2^page_shift] only for a trailing
    partial page).  @raise Invalid_argument on a bad page index. *)

val read : t -> int -> Word.t
(** @raise Invalid_argument if the address is out of range. *)

val write : t -> int -> Word.t -> unit
(** The value is masked to 32 bits.
    @raise Invalid_argument if the address is out of range. *)

val in_range : t -> int -> bool

val read_fast : t -> int -> Word.t
(** Unchecked read for the translated-code engine: the caller must
    have proved [0 <= addr < size t] (a masked word is non-negative,
    so one compare against [size] suffices). *)

val write_fast : t -> int -> Word.t -> unit
(** Unchecked write for the translated-code engine: same address
    obligation as {!read_fast}, plus the value must already be a
    masked 32-bit word (register values are).  Dirty-page tracking is
    identical to {!write}. *)

val blit_in : t -> addr:int -> Word.t array -> unit
(** Copy a block of words into memory starting at [addr] (DMA). *)

val blit_out : t -> addr:int -> len:int -> Word.t array
(** Copy [len] words out of memory starting at [addr] (DMA). *)

val blit_from : t -> src:t -> unit
(** Overwrite this memory's contents with [src]'s, directly, without
    materialising an intermediate array.  Digest caches are adopted
    from [src] when the page geometry matches; all pages are marked
    dirty for snapshot purposes.
    @raise Invalid_argument on a size mismatch. *)

val copy : t -> t
(** Deep copy, used for state snapshots (backup reintegration).  Work
    counters start at zero in the copy. *)

val copy_page : src:t -> dst:t -> int -> unit
(** Copy one page of words (and its digest-cache state) between two
    memories of identical geometry — the delta-snapshot primitive.
    @raise Invalid_argument on geometry mismatch or bad page index. *)

val equal : t -> t -> bool
(** Word-array content equality (early-exit loop; tracking state is
    not compared). *)

val digest : t -> int
(** FNV digest of the whole contents, computed incrementally: only
    pages written since the last call are re-hashed, the rest fold in
    their cached page digests.  A pure function of the contents —
    always equal to {!full_digest}. *)

val full_digest : t -> int
(** The same digest computed from scratch, ignoring (and not
    updating) the page-digest cache; the reference implementation the
    incremental path is checked against. *)

val hash_into : t -> int -> int
(** [hash_into mem seed] folds {!digest} into a running FNV hash; used
    for lockstep state comparison. *)

val take_hash_work : t -> int * int
(** [(pages hashed, pages skipped)] by digest computations since the
    last call; resets both counters.  Skipped pages are those whose
    cached digest was reused. *)

val dirty_pages : t -> int list
(** Pages written since the last {!clear_dirty}, ascending.  All pages
    are dirty initially. *)

val clear_dirty : t -> unit

val load : t -> addr:int -> Word.t list -> unit
(** Write a literal list of words at [addr] (program loading). *)
