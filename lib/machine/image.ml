exception Format_error of string

let magic = "HFT1"

let to_string ?manifest (p : Asm.program) =
  let buf = Buffer.create (Array.length p.Asm.code * 18) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d\n" magic (Array.length p.Asm.code));
  (match manifest with
  | None -> ()
  | Some m ->
    if String.contains m '\n' then
      invalid_arg "Image.to_string: manifest contains a newline";
    Buffer.add_string buf (Printf.sprintf "M %s\n" m));
  List.iter
    (fun (name, addr) ->
      if String.contains name ' ' || String.contains name '\n' then
        invalid_arg "Image.to_string: label contains whitespace";
      Buffer.add_string buf (Printf.sprintf "L %s %d\n" name addr))
    (List.sort compare p.Asm.labels);
  List.iter
    (fun addr -> Buffer.add_string buf (Printf.sprintf "R %d\n" addr))
    p.Asm.code_refs;
  List.iter
    (fun (addr, text) ->
      if String.contains text '\n' then
        invalid_arg "Image.to_string: source line contains a newline";
      Buffer.add_string buf (Printf.sprintf "C %d %s\n" addr text))
    p.Asm.srclines;
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "%016Lx\n" (Encode.encode i)))
    p.Asm.code;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> raise (Format_error "empty image")
  | header :: rest ->
    let count =
      match String.split_on_char ' ' header with
      | [ m; n ] when m = magic -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> n
        | _ -> raise (Format_error "bad instruction count"))
      | _ -> raise (Format_error "bad magic")
    in
    let labels = ref [] and refs = ref [] and words = ref [] in
    let srclines = ref [] in
    List.iter
      (fun line ->
        if String.length line > 2 && String.sub line 0 2 = "C " then begin
          let rest = String.sub line 2 (String.length line - 2) in
          match String.index_opt rest ' ' with
          | Some sp -> (
            match int_of_string_opt (String.sub rest 0 sp) with
            | Some a ->
              srclines :=
                (a, String.sub rest (sp + 1) (String.length rest - sp - 1))
                :: !srclines
            | None -> raise (Format_error ("bad source line: " ^ line)))
          | None -> raise (Format_error ("bad source line: " ^ line))
        end
        else if String.length line > 2 && String.sub line 0 2 = "L " then begin
          match String.split_on_char ' ' line with
          | [ _; name; addr ] -> (
            match int_of_string_opt addr with
            | Some a -> labels := (name, a) :: !labels
            | None -> raise (Format_error ("bad label line: " ^ line)))
          | _ -> raise (Format_error ("bad label line: " ^ line))
        end
        else if String.length line > 2 && String.sub line 0 2 = "M " then
          (* embedded compilation manifest: opaque to the machine
             layer; [manifest_of_string] extracts it *)
          ()
        else if String.length line > 2 && String.sub line 0 2 = "R " then begin
          match int_of_string_opt (String.trim (String.sub line 2 (String.length line - 2))) with
          | Some a -> refs := a :: !refs
          | None -> raise (Format_error ("bad relocation line: " ^ line))
        end
        else
          match Int64.of_string_opt ("0x" ^ String.trim line) with
          | Some w -> words := w :: !words
          | None -> raise (Format_error ("bad instruction word: " ^ line)))
      rest;
    let words = Array.of_list (List.rev !words) in
    if Array.length words <> count then
      raise
        (Format_error
           (Printf.sprintf "instruction count mismatch: header %d, found %d"
              count (Array.length words)));
    let code = Encode.decode_program words in
    (* rebuild through the assembler so labels are validated *)
    let by_addr = Hashtbl.create 16 in
    List.iter
      (fun (name, addr) ->
        if addr < 0 || addr > Array.length code then
          raise (Format_error (Printf.sprintf "label %s out of range" name));
        Hashtbl.replace by_addr addr
          (name :: (try Hashtbl.find by_addr addr with Not_found -> [])))
      !labels;
    let is_ref =
      let tbl = Hashtbl.create 8 in
      List.iter (fun a -> Hashtbl.replace tbl a ()) !refs;
      fun a -> Hashtbl.mem tbl a
    in
    let cmt_by_addr = Hashtbl.create 8 in
    List.iter
      (fun (addr, text) ->
        if addr < 0 || addr >= Array.length code then
          raise (Format_error "source line out of range");
        Hashtbl.replace cmt_by_addr addr text)
      !srclines;
    let items = ref [] in
    Array.iteri
      (fun addr i ->
        (match Hashtbl.find_opt by_addr addr with
        | Some names -> List.iter (fun n -> items := Asm.label n :: !items) names
        | None -> ());
        (match Hashtbl.find_opt cmt_by_addr addr with
        | Some text -> items := Asm.comment text :: !items
        | None -> ());
        (* re-express relocatable immediates through ldi_target so the
           reloaded program keeps its relocation list *)
        items :=
          (match i with
          | Isa.Ldi (rd, v) when is_ref addr -> Asm.ldi_target rd (Asm.abs v)
          | other -> Asm.insn other)
          :: !items)
      code;
    (match Hashtbl.find_opt by_addr (Array.length code) with
    | Some names -> List.iter (fun n -> items := Asm.label n :: !items) names
    | None -> ());
    Asm.assemble (List.rev !items)

let manifest_of_string s =
  String.split_on_char '\n' s
  |> List.find_map (fun line ->
         if String.length line > 2 && String.sub line 0 2 = "M " then
           Some (String.sub line 2 (String.length line - 2))
         else None)

let save ?manifest ~path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?manifest p))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let load_with_manifest ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let s = In_channel.input_all ic in
      (of_string s, manifest_of_string s))
