(** Direct-threaded translation of manifest-certified superblocks.

    The translator pre-decodes each certified superblock into a chain
    of OCaml closures — one per instruction, with adjacent
    straight-line pairs fused into superinstructions — so the hot path
    pays no per-instruction decode, no per-instruction recovery-counter
    bookkeeping (the charge is batched per basic block against a
    pre-computed budget), and no per-instruction certificate checks
    (one privilege precheck at superblock entry stands in for them;
    the certificates themselves are the static proof).

    The module is deliberately below {!Cpu} in the dependency order:
    it defines the execution-state record the closures mutate and the
    stop conditions they can produce, and {!Cpu.run}'s dispatch loop
    owns entering translated code and converting exits back into
    interpreter stops.  Translated execution is semantically identical
    to the interpreter on the instructions it executes — anything
    whose behaviour is not a pure function of the threaded state
    (environment instructions, privileged instructions, trap calls)
    compiles to a {e bail} exit that hands the program counter back to
    the interpreter untouched. *)

(** One basic block of a certified superblock, by leader address. *)
type plan_block = { pb_leader : int; pb_len : int }

(** A member block that is a single-block counted loop with a
    certified trip bound ([pl_bound] worst-case header visits per
    entry): license to batch the per-iteration budget prologue by
    unrolling the body (see the loop-hoisting notes in the
    implementation).  The bound sizes the batch; correctness of the
    accounting never depends on it. *)
type plan_loop = { pl_leader : int; pl_bound : int }

(** One certified superblock: the head is the unique entry; the
    privilege mask is the bitmask of {e real} privilege levels the
    whole region is certified for ([-1] when unconstrained). *)
type plan_region = {
  pr_head : int;
  pr_blocks : plan_block list;
  pr_priv_mask : int;
  pr_loops : plan_loop list;
}

(** Stop conditions translated code can produce mid-block.  These
    mirror the memory subset of {!Cpu.stop}; the dispatch loop
    converts them.  The faulting instruction has {e not} completed —
    its cost is refunded and [x_pc] points at it. *)
type stop =
  | X_mmio_read of { paddr : int; reg : Isa.reg }
  | X_mmio_write of { paddr : int; value : Word.t }
  | X_tlb_miss of { vaddr : int; write : bool }
  | X_protection of { vaddr : int; write : bool }
  | X_fault_load of int
  | X_fault_store of int

(** Why translated execution returned to the dispatch loop. *)

val exit_budget : int
(** the next block does not fit the remaining instruction budget *)

val exit_link : int
(** control left the translated region (branch/jump/fall-through) *)

val exit_indirect : int
(** an indirect jump ([Jr]); [x_pc] holds the runtime target *)

val exit_bail : int
(** a non-ordinary instruction; the interpreter resumes {e at} it *)

val exit_stop : int
(** a memory stop; [x_stop] holds it *)

val exit_name : int -> string

(** Mutable execution state shared between the dispatch loop and the
    compiled closures.  The register file, memory, and TLB are aliases
    of the owning CPU's; the rest is (re)initialized per entry. *)
type st = {
  x_regs : int array;
  x_mem : Memory.t;
  x_tlb : Tlb.t;
  x_mmio_base : int;
  x_page_shift : int;
  mutable x_pc : int;
  mutable x_remaining : int;
      (** instruction budget still available; the dispatch loop derives
          the completed count as entry budget minus this *)
  mutable x_smmu : bool;
  mutable x_spriv : int;
  mutable x_stop : stop option;
  mutable x_exit : int;
  mutable x_hoist_saved : int;
      (** cumulative per-iteration budget decrements avoided by
          hoisted loop batches (one per direct copy-to-copy chain) —
          credited at batch entry and debited on early loop exits, so
          the hot edge carries no accounting; a memory stop mid-batch
          can leave a small overcount (reporting only) *)
  x_prof : int array;
      (** per-address retirement counters when profiling, length 0
          otherwise.  Block prologues credit the whole block at the
          leader; the cold exit paths debit the refund, so the net
          charge equals the completed instructions on every path and
          agrees exactly with the interpreter's per-instruction
          counts.  Loop hoisting is disabled while profiling to keep
          the refunds per-block exact. *)
  mutable x_prof_leader : int;
      (** leader currently holding the profiling credit *)
}

(** A translated superblock entry point. *)
type entry = {
  e_cost : int;       (** instruction cost of the head block *)
  e_priv_mask : int;  (** allowed real-privilege bitmask, [-1] any *)
  e_def : int;
      (** registers the region may write (static over-approximation
          over every member block) — credited to the validator's
          written-register set at entry instead of per block *)
  e_run : unit -> unit;
}

type block_listing = { l_leader : int; l_len : int; l_ops : string list }

type region_listing = {
  l_head : int;
  l_cost : int;
  l_priv_mask : int;
  l_blocks : block_listing list;
}

type t = {
  entries : entry option array;
      (** indexed by code address; [Some] at every translated member
          leader that begins with an ordinary instruction — any of
          them is a legal re-entry point after a mid-region exit *)
  state : st;
  translated_regions : int;
  translated_blocks : int;
  translated_instrs : int;
  fused : int;  (** superinstructions formed *)
  hoisted_loops : int;
      (** loop blocks compiled as batched unrolls (one per certified
          single-block loop the plan carried) *)
  listing : region_listing list;
  untranslated : (int * string) list;
      (** region head, reason it was left to the interpreter *)
  mutable entries_taken : int;
  mutable threaded_instrs : int;
  mutable fb_budget : int;
  mutable fb_priv : int;
  mutable fb_link : int;
  mutable fb_indirect : int;
  mutable fb_bail : int;
  mutable fb_stop : int;
}

val compile :
  code:Isa.instr array ->
  regs:int array ->
  mem:Memory.t ->
  tlb:Tlb.t ->
  mmio_base:int ->
  page_shift:int ->
  ?profile:int array ->
  plan_region list ->
  t
(** Compile every region of the plan.  Regions that cannot make
    guaranteed progress under translation (a head block opening with a
    non-ordinary instruction) or that fail basic sanity checks are
    recorded in [untranslated] and left to the interpreter.

    [?profile] supplies a per-address retirement counter array (same
    length as [code]): compiled blocks then maintain it exactly (see
    [x_prof]) at the cost of one store and one counter bump per block
    entry, and loop hoisting is disabled. *)

val note_entry_refused_budget : t -> unit
val note_entry_refused_priv : t -> unit

val note_exit : t -> unit
(** Charge the fallback counter matching [state.x_exit] after a run. *)

val pp_listing : Format.formatter -> t -> unit
(** The [hftsim disasm --translated] listing: per-superblock fused
    superinstructions, entry prechecks, and per-region fallback
    reasons for untranslated superblocks. *)
