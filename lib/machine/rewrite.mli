(** Object-code editing: the paper's alternative to the recovery
    register.

    Section 2.1: "Object-code editing gives yet another way to ensure
    that the primary and backup hypervisors are invoked at identical
    points in a virtual machine's instruction stream.  In this scheme,
    the object code for the kernel and all user processes is edited so
    that the hypervisor is invoked periodically."

    {!insert_epoch_markers} rewrites a program with {e software
    instruction counting}: at every instrumentation site — every
    [every] static instructions, every backward-branch target so
    loops are counted, and (when the program contains indirect jumps)
    every address a [Jr] might land on — each [Jal] return point
    linked through a register some [Jr] consumes, and each code
    address loaded into one by an immediate — so loops closed through
    indirect jumps are counted too — it inserts

    {v
      subi  r15, r15, W      (* W ~ instructions since the last site *)
      bge   r15, r0, +3      (* budget left: skip *)
      trapc 255              (* epoch marker: invoke the hypervisor *)
    v}

    The hypervisor reloads [r15] with the epoch length at every
    marker, so markers fire about every [every] dynamic instructions —
    the software analogue of the recovery register, at the price of a
    couple of extra instructions per site crossing (quantified by the
    ablation benchmark).  Branch and jump targets are rebound, and
    immediates known (from the assembler's relocation list) to hold
    code addresses are relocated; link values produced by [Jal] need
    no fixing because they are generated at run time from the
    rewritten pc.

    Under this mechanism the recovery register is not used at all. *)

val epoch_marker_code : int
(** The reserved trap-call code (255).  Guest programs must not use
    it. *)

val counter_reg : Isa.reg
(** The register reserved for the software instruction counter (r15);
    rewritten guests must not use it outside the kernel's
    save/restore discipline. *)

type t = {
  code : Isa.instr array;     (** the rewritten program *)
  markers : int;              (** number of counting sequences inserted *)
  map : int array;            (** original address -> rewritten address *)
}

val insert_epoch_markers : every:int -> Asm.program -> t
(** @raise Invalid_argument if [every < 1] or the program already
    contains the marker trap code. *)

val rewrite_program : every:int -> Asm.program -> Asm.program
(** Convenience: a rewritten {!Asm.program} with labels rebound to
    their new addresses (the relocation list is consumed — the
    rewritten image needs no further editing). *)
