(** The simulated processor: architectural state plus an instruction
    stepper.

    The stepper executes {e ordinary} instructions directly and stops
    — returning control to its executor — on anything whose behaviour
    is not a pure function of the virtual-machine state: environment
    instructions, privileged instructions attempted above privilege
    level 0, MMIO accesses, TLB misses, trap calls, and expiry of the
    recovery counter.  The executor is either the bare-metal runner
    (which performs the hardware action directly) or the hypervisor
    (which simulates it, per the paper's Environment Instruction
    Assumption).

    The stepper never delivers traps into the guest by itself;
    {!deliver_trap} is the hardware delivery mechanism invoked by the
    bare-metal executor, and the hypervisor performs the equivalent
    virtual delivery against the virtual machine's state. *)

type config = {
  mem_words : int;      (** size of physical data memory *)
  mmio_base : int;      (** physical word addresses at or above this
                            are device registers, not memory *)
  page_shift : int;     (** log2 of the page size in words *)
  tlb_entries : int;
  tlb_policy : Tlb.policy;
}

val default_config : config
(** 64 Ki words of memory, MMIO at 0xF0000, 1 Ki-word pages, 16 TLB
    entries, round-robin replacement. *)

type t

(** Why {!run} stopped. *)
type stop =
  | Fuel              (** the requested number of instructions completed *)
  | Recovery          (** recovery counter went negative (epoch end) *)
  | Stop_halt         (** [Halt] executed; pc points at the halt *)
  | Stop_wfi          (** [Wfi] completed; pc points past it *)
  | Env of Isa.instr  (** environment instruction needs simulation;
                          pc still points at it *)
  | Priv of Isa.instr (** privileged instruction at privilege > 0;
                          pc still points at it *)
  | Mmio_read of { paddr : int; reg : Isa.reg }
  | Mmio_write of { paddr : int; value : Word.t }
      (** memory-mapped I/O access; pc still points at the load/store *)
  | Tlb_miss of { vaddr : int; write : bool }
  | Protection of { vaddr : int; write : bool }
      (** user-mode access to a supervisor-only or read-only page *)
  | Syscall of int    (** [Trapc code]; pc still points at it *)
  | Fault of string   (** architectural error: bad pc, bad physical
                          address, invalid control register *)
  | Cert_violation of { addr : int; msg : string }
      (** the runtime certificate validator caught a certified block
          violating its compilation-manifest certificate — a static
          analyzer bug or a stale manifest; executors treat it as
          fatal *)

type run_result = {
  executed : int;  (** ordinary instructions completed during this run *)
  stop : stop;
}

val create : ?config:config -> code:Isa.instr array -> unit -> t

val config : t -> config
val code : t -> Isa.instr array
val mem : t -> Memory.t
val tlb : t -> Tlb.t

val pc : t -> int
val set_pc : t -> int -> unit
val advance_pc : t -> unit
(** [set_pc t (pc t + 1)] — used by executors after simulating an
    instruction that stopped the stepper. *)

val reg : t -> Isa.reg -> Word.t
val set_reg : t -> Isa.reg -> Word.t -> unit
(** Writes to register 0 are ignored. *)

val cr : t -> Isa.cr -> Word.t
val set_cr : t -> Isa.cr -> Word.t -> unit

val priv : t -> int
val set_priv : t -> int -> unit

val set_recovery : t -> int -> unit
(** Arm the recovery counter: enables counting and sets it so that the
    trap fires after exactly [n] further instructions complete. *)

val disable_recovery : t -> unit

val recovery_remaining : t -> int
(** Instructions left before the recovery trap (0 if disabled). *)

val tick_recovery : t -> bool
(** Decrement the recovery counter for an instruction completed by the
    executor on the CPU's behalf (a simulated environment or
    privileged instruction).  Returns [true] if the counter expired. *)

val run : t -> fuel:int -> run_result
(** Execute up to [fuel] instructions.  [fuel] must be positive. *)

val install_validator :
  ?blk_end:int array ->
  ?loop_of:int array ->
  ?lhead:int array ->
  ?lbound:int array ->
  t ->
  priv_ok:int array ->
  det:bool array ->
  uses:int array ->
  def:int array ->
  region:int array ->
  rhead:int array ->
  rbound:int array ->
  random_tlb:bool ->
  unit
(** Arm the runtime certificate validator (the dynamic oracle for the
    static compilation manifest — see [Hft_analysis.Manifest]).  The
    first five tables are indexed by code address and must match the
    code length; [rhead]/[rbound] are indexed by certified-superblock
    id.  [priv_ok] is the bitmask of {e real} privilege levels allowed
    at the address (callers map a [Priv0] certificate through the
    hypervisor's deprivileging); [det] marks addresses inside
    [Deterministic]-certified blocks, whose register reads are checked
    against the runtime written set and whose loads must stay below
    the MMIO window; [region]/[rhead]/[rbound] drive the
    [Epoch_bounded] per-superblock instruction count.  {!run} stops
    with {!stop.Cert_violation} on the first breach.  Trap delivery
    and {!restore} reset the written set (trap roots start fully
    initialized; snapshot registers are replicated state).

    [blk_end] maps each address to the exclusive end of its basic
    block; when given, the per-instruction pre-dispatch checks hoist
    into one per-block check that certifies a skip window over the
    block's straight-line run (see the manifest's ~29% validator
    overhead in BENCH_core.json).  Without it every window is a
    singleton and checking is exactly per-instruction.

    [loop_of]/[lhead]/[lbound] arm the loop-bound certificates:
    [loop_of] maps each address to its innermost {e bounded} loop (or
    [-1]), [lhead] that loop's header address and [lbound] its
    certified worst-case header visits per entry.  The validator
    counts header visits while the pc stays inside one loop's
    addresses — any excursion resets the count, so the dynamic check
    undercounts and never falsely trips — and stops with
    {!stop.Cert_violation} when a count exceeds its bound. *)

val clear_validator : t -> unit
val validator_active : t -> bool

val validator_amnesty : t -> unit
(** Reset the validator's path-sensitive state (written-register set,
    current superblock).  {!deliver_trap} and {!restore} call this
    internally; the hypervisor calls it on {e virtual} trap delivery,
    which enters a trap root without touching the real trap path. *)

val validator_coverage : t -> (int * int) option
(** [(covered, checked)]: instructions completed inside certified
    superblocks vs all instructions completed while validating, over
    the CPU's lifetime.  [None] when no validator is installed. *)

val observed_bounds : t -> (int array * int array) option
(** Per-certified-superblock and per-bounded-loop observed maxima, in
    the same index order as [rhead]/[rbound] and [lhead]/[lbound] were
    supplied to {!install_validator}: the largest per-entry instruction
    count each superblock actually reached, and the largest header-visit
    count each bounded loop actually reached.  Joined against the static
    WCET certificates this yields the per-region slack report.  The
    dynamic counters undercount by design (excursions reset them), so
    observed [<=] certified always holds on a valid manifest.  [None]
    when no validator is installed. *)

val install_translation : t -> Translate.plan_region list -> unit
(** Compile the plan's certified superblocks to direct-threaded
    closure chains ({!Translate.compile}) and arm {!run}'s dispatch
    loop: when the pc lands on a translated superblock head and the
    entry prechecks pass (instruction budget, certified privilege
    mask), execution proceeds through the closure chain instead of the
    decode loop, with the recovery-counter charge batched per basic
    block.  Exits, traps, and untranslated code fall back to the
    interpreter, which remains the semantic oracle. *)

val clear_translation : t -> unit
val translation : t -> Translate.t option

val install_profile : t -> unit
(** Arm exact guest hot-spot profiling: allocate a per-address
    retirement counter array covering the code image and have both
    backends maintain it — the interpreter bumps the completed
    instruction's slot, translated blocks credit their length at the
    leader and the cold exits debit refunds, so the two backends
    produce identical totals on identical runs.  If a translation is
    already installed it is recompiled from its stored plan (profiling
    specialises block prologues and disables loop hoisting), so arming
    order does not matter. *)

val clear_profile : t -> unit
(** Drop the counters (recompiling any installed translation without
    the profiling prologues). *)

val profile : t -> int array option
(** The live counter array — retirement counts by code address. *)

val profile_active : t -> bool

val profile_total : t -> int
(** Sum over the counter array; 0 when profiling is off. *)

val deliver_trap : ?badvaddr:int -> t -> cause:int -> epc:int -> unit
(** Hardware trap/interrupt delivery: saves [epc] and the status
    register, records the cause, switches to privilege 0 with
    interrupts and the MMU disabled, and jumps to the vector in
    [Cr_ivec].  The recovery counter is unaffected. *)

val interrupts_enabled : t -> bool

val translate : t -> write:bool -> int -> (int, stop) result
(** Virtual-to-physical translation as the load/store path performs
    it; exposed for the hypervisor's TLB-management path and tests. *)

val instructions_retired : t -> int
(** Total completed instructions over the CPU's lifetime. *)

val state_hash : ?include_tlb:bool -> ?full:bool -> t -> int
(** Hash of the architectural state (registers, pc, control registers,
    memory; optionally the TLB).  Two virtual machines in lockstep
    must have equal hashes at every epoch boundary.

    Memory is folded in as {!Memory.digest} — incremental over dirty
    pages — unless [full] is set, which uses the from-scratch
    {!Memory.full_digest}.  The two produce identical hashes, so
    replicas may mix schemes freely; [full] exists as the reference
    (and worst case) for benchmarks and equivalence tests. *)

type snapshot

val snapshot : t -> snapshot
(** Copy of the architectural state, for backup reintegration.  The
    first call copies memory in full; subsequent calls copy only the
    pages written since the previous snapshot into a shared base
    image.  Consequently taking a new snapshot invalidates the memory
    contents of snapshots taken earlier from the same CPU — callers
    keep at most one live snapshot per CPU (the hypervisor's
    reintegration path does). *)

val snapshot_bytes_copied : t -> int
(** Cumulative bytes of memory copied by {!snapshot} over this CPU's
    lifetime (the delta-snapshot win shows as this growing by much
    less than a full image per call). *)

val restore : t -> snapshot -> unit
(** Overwrite this CPU's state with the snapshot.  The code image must
    be the one the snapshot was taken from.
    @raise Invalid_argument on a code-image size mismatch. *)

val pp_stop : Format.formatter -> stop -> unit
