(** Assembly of the complete 1-fault-tolerant virtual machine: two
    simulated processors (each with its own clock), the shared
    dual-ported disk, a console, the FIFO channels between the
    hypervisors, and optional fault-injection and lockstep checking.

    This is the module examples and benchmarks talk to:

    {[
      let sys =
        System.create ~params:Params.default
          ~workload:(Workload.dhrystone ~iterations:100_000) () in
      let outcome = System.run sys in
      Format.printf "finished in %a@." Hft_sim.Time.pp outcome.time
    ]} *)

type t

val create :
  ?params:Params.t ->
  ?disk_seed:int ->
  ?tlb_seeds:int * int ->
  ?lockstep:bool ->
  ?init_disk:bool ->
  ?second_backup:bool ->
  ?trace:Hft_sim.Trace.t ->
  ?obs:Hft_obs.Recorder.t ->
  workload:Hft_guest.Workload.t ->
  unit ->
  t
(** [obs] is threaded to every hypervisor, channel and the disk: all
    typed protocol events of the run land in this one recorder (and,
    when the recorder was created with [~dispatch:true], every
    scheduler dispatch as well).  Defaults to the null recorder.
    [tlb_seeds] gives each processor's TLB-replacement RNG when the
    CPU config uses a [Random] policy — pass different seeds to
    reproduce the paper's nondeterministic-TLB divergence.
    [lockstep] (default true) records the VM state hash at every epoch
    boundary on both replicas and compares them; disable for large
    benchmark runs (hashing all of guest memory every epoch is slow).
    [init_disk] (default true) pre-fills the disk blocks.
    [second_backup] (default false) chains a second backup behind the
    first for 2-fault tolerance (failures tolerated in role order). *)

val engine : t -> Hft_sim.Engine.t

val primary : t -> Hypervisor.t

val backup : t -> Hypervisor.t

val backup2 : t -> Hypervisor.t option
(** The chained second backup, when the system was created with
    [~second_backup:true] (a 2-fault-tolerant virtual machine: the
    first backup forwards the coordination stream; failures are
    tolerated in order — the primary first, then the promoted
    backup). *)

val disk : t -> Hft_devices.Disk.t
val console : t -> Hft_devices.Console.t

val channel_to_backup : t -> Message.t Hft_net.Channel.t
(** The primary-to-backup channel, exposed for fault injection
    (message-loss plans) and statistics. *)

val channel_to_primary : t -> Message.t Hft_net.Channel.t

val crash_primary_at : t -> Hft_sim.Time.t -> unit
(** Schedule a fail-stop of the primary's processor. *)

val crash_primary_on_epoch : t -> int -> unit
(** Fail the primary exactly when it reaches the given epoch boundary
    (before completing it — the canonical failover epoch of case (ii),
    section 2.2). *)

val crash_backup_at : t -> Hft_sim.Time.t -> unit

val crash_backup_on_epoch : t -> int -> unit
(** Fail the backup when it reaches the given epoch boundary; the
    primary detects the silence (missing acknowledgements) and
    continues unreplicated. *)

val hv_fault_at :
  t ->
  target:[ `Primary | `Backup ] ->
  kind:Hypervisor.hv_fault ->
  Hft_sim.Time.t ->
  unit
(** Schedule a hypervisor fault (ReHype extension) on the given node
    at an absolute time; see {!Hypervisor.inject_hv_fault}. *)

val hv_fault_on_epoch :
  t -> target:[ `Primary | `Backup ] -> kind:Hypervisor.hv_fault -> int -> unit
(** Inject a hypervisor fault mid-epoch, deterministically: when the
    node starts the given epoch's boundary processing, the fault is
    scheduled half an epoch's simulated time later.  Chains with other
    boundary hooks ([crash_*_on_epoch], lockstep recording). *)

val install_fault_model :
  t -> rng:Hft_sim.Rng.t -> Hft_net.Channel.fault_model -> unit
(** Downgrade both hypervisor channels to fair-lossy with independent
    random streams split from [rng], wiring {!Message.corrupt} as the
    corrupter so damaged frames fail their checksum at the
    receiver. *)

val faults_injected : t -> int
(** Total faults (losses, duplicates, corruptions, nonzero delays)
    the two channels' fault models have injected so far. *)

val fingerprint : t -> int
(** Canonical digest of the whole system — the virtual clock, both
    hypervisors (VM state and protocol state), the primary/backup
    channel pair, the disk, the console output and the pending event
    set (relative times).  Two interleavings that reach behaviourally
    identical global states fingerprint alike (same-instant
    reorderings never advance the clock); states differing only by a
    time shift stay distinct, since pending timers fire on the
    absolute clock.  The model checker uses this to prune revisited
    states.  The chained second backup's private
    channels are not covered — checker scenarios are two-replica. *)

val reintegrate_after_failover : t -> delay:Hft_sim.Time.t -> unit
(** After a promotion, wait [delay], revive the failed processor as a
    fresh backup and stream a state snapshot to it (extension beyond
    the paper). *)

type outcome = {
  completed_by : [ `Primary | `Promoted_backup ];
  time : Hft_sim.Time.t;        (** virtual completion time *)
  results : Guest_results.t;    (** from the surviving VM *)
  console : string;
  primary_stats : Stats.t;
  backup_stats : Stats.t;
  epochs_compared : int;        (** lockstep pairs checked *)
  lockstep_mismatches : int list;  (** epochs where the replicas diverged *)
  disk_consistent : bool;       (** single-processor consistency of the
                                    device's operation history *)
  disk_errors : string list;
  failover : bool;
  messages_sent : int;          (** primary-to-backup channel *)
  bytes_sent : int;
}

val run : ?limit:int -> t -> outcome
(** Start both hypervisors and run the simulation until the surviving
    virtual machine halts and all events drain.
    @raise Failure if no VM completes the workload. *)
