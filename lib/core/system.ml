open Hft_sim
open Hft_devices
module Channel = Hft_net.Channel

type lockstep = {
  hashes : (int, int) Hashtbl.t;  (* epoch -> first reporter's hash *)
  mutable compared : int;
  mutable mismatches : int list;  (* reversed *)
  fail_fast : bool;
      (* under [Params.Differential] the replicas deliberately run
         different execution backends, so the first divergence is a
         translator bug: fault the run immediately instead of
         accumulating mismatches *)
}

type t = {
  engine : Engine.t;
  p : Params.t;
  workload : Hft_guest.Workload.t;
  primary_ : Hypervisor.t;
  backup_ : Hypervisor.t;
  backup2_ : Hypervisor.t option;
  disk_ : Disk.t;
  console_ : Console.t;
  ch_pb : Message.t Channel.t;
  ch_bp : Message.t Channel.t;
  ls : lockstep option;
  mutable failover_ : bool;
  mutable reintegration_delay : Time.t option;
}

let fill_block ~block_words block =
  Array.init block_words (fun i ->
      Hft_machine.Word.mask ((block * 0x01000193) + i))

let record_boundary ls ~epoch ~hash =
  match Hashtbl.find_opt ls.hashes epoch with
  | None -> Hashtbl.replace ls.hashes epoch hash
  | Some other ->
    ls.compared <- ls.compared + 1;
    if other <> hash then begin
      ls.mismatches <- epoch :: ls.mismatches;
      if ls.fail_fast then
        failwith
          (Printf.sprintf
             "System: differential divergence at epoch %d: one replica \
              hashed 0x%x, the other 0x%x"
             epoch other hash)
    end

let create ?(params = Params.default) ?(disk_seed = 42) ?tlb_seeds
    ?(lockstep = true) ?(init_disk = true) ?(second_backup = false) ?trace
    ?(obs = Hft_obs.Recorder.null) ~workload () =
  let workload =
    match params.Params.epoch_mechanism with
    | Params.Recovery_register -> workload
    | Params.Code_rewriting ->
      {
        workload with
        Hft_guest.Workload.program =
          Hft_machine.Rewrite.rewrite_program ~every:params.Params.epoch_length
            workload.Hft_guest.Workload.program;
      }
  in
  let engine = Engine.create ?trace () in
  (* scheduler dispatches are high-volume; only feed them to the
     recorder when it asked for them, or they would evict the protocol
     events from the ring *)
  if Hft_obs.Recorder.dispatch_enabled obs then
    Engine.set_observer engine (fun time ~label ~actor ->
        Hft_obs.Recorder.emit obs ~time
          ~source:(if actor = "" then "engine" else actor)
          (Hft_obs.Event.Dispatch { label }));
  let disk_ =
    Disk.create ~engine ~rng:(Rng.create disk_seed) ~obs params.Params.disk
  in
  if init_disk then begin
    let prm = Disk.params disk_ in
    for block = 0 to prm.Disk.blocks - 1 do
      Disk.write_block_now disk_ block
        (fill_block ~block_words:prm.Disk.block_words block)
    done
  end;
  let console_ = Console.create () in
  let clock_p = Clock.create ~engine () in
  let clock_b = Clock.create ~engine ~skew:params.Params.backup_clock_skew () in
  (* Give each processor its own TLB-replacement stream when the
     policy is random: that is the hardware nondeterminism of
     section 3.2. *)
  let params_for seed =
    match (params.Params.cpu_config.Hft_machine.Cpu.tlb_policy, tlb_seeds) with
    | Hft_machine.Tlb.Random _, Some _ ->
      {
        params with
        Params.cpu_config =
          {
            params.Params.cpu_config with
            Hft_machine.Cpu.tlb_policy = Hft_machine.Tlb.Random (Rng.create seed);
          };
      }
    | _ -> params
  in
  let seeds = match tlb_seeds with Some (a, b) -> (a, b) | None -> (1, 1) in
  (* [Differential] splits the backends across the replicas: the
     primary executes through the direct-threaded translation, the
     backup stays on the decode-per-step interpreter, and the
     protocol's own epoch-boundary state hashes arbitrate *)
  let backend_for role p =
    match (p.Params.exec_backend, role) with
    | Params.Differential, `Primary -> Params.with_exec_backend p Params.Threaded
    | Params.Differential, `Backup -> Params.with_exec_backend p Params.Interp
    | (Params.Interp | Params.Threaded), _ -> p
  in
  let primary_ =
    Hypervisor.create ~name:"primary" ~role:Hypervisor.Primary ~port:0 ~engine
      ~params:(backend_for `Primary (params_for (fst seeds)))
      ~workload ~disk:disk_ ~console:console_ ~clock:clock_p ~obs ()
  in
  let backup_ =
    Hypervisor.create ~name:"backup" ~role:Hypervisor.Backup ~port:1 ~engine
      ~params:(backend_for `Backup (params_for (snd seeds)))
      ~workload ~disk:disk_ ~console:console_ ~clock:clock_b ~obs ()
  in
  (* delivery events are tagged with the RECEIVER: that is whose state
     the delivery handler mutates (model-checker independence) *)
  let ch_pb =
    Channel.create ~engine ~link:params.Params.link ~name:"primary->backup"
      ~actor:"backup" ~obs ()
  in
  let ch_bp =
    Channel.create ~engine ~link:params.Params.link ~name:"backup->primary"
      ~actor:"primary" ~obs ()
  in
  Channel.set_hasher ch_pb Message.hash;
  Channel.set_hasher ch_bp Message.hash;
  (* chain extension (t = 2): a second backup hangs off the first,
     which forwards the whole coordination stream *)
  let backup2_ =
    if not second_backup then None
    else begin
      let clock_b2 =
        Clock.create ~engine
          ~skew:(Time.scale params.Params.backup_clock_skew 2)
          ()
      in
      (* the downstream backup must outlast the first backup's
         detection and takeover before suspecting the whole chain *)
      let params2 =
        {
          (backend_for `Backup (params_for (snd seeds))) with
          Params.detector_timeout = Time.scale params.Params.detector_timeout 3;
        }
      in
      let b2 =
        Hypervisor.create ~name:"backup2" ~role:Hypervisor.Backup ~port:2
          ~engine ~params:params2 ~workload ~disk:disk_ ~console:console_
          ~clock:clock_b2 ~obs ()
      in
      let ch_b1b2 =
        Channel.create ~engine ~link:params.Params.link ~name:"backup->backup2"
          ~actor:"backup2" ~obs ()
      in
      let ch_b2b1 =
        Channel.create ~engine ~link:params.Params.link ~name:"backup2->backup"
          ~actor:"backup" ~obs ()
      in
      Channel.set_hasher ch_b1b2 Message.hash;
      Channel.set_hasher ch_b2b1 Message.hash;
      Hypervisor.connect backup_ ~tx_ack:ch_bp ~tx_data:ch_b1b2 ~peer:primary_;
      Hypervisor.connect b2 ~tx_ack:ch_b2b1 ~peer:backup_;
      Channel.connect ch_b1b2 (fun msg -> Hypervisor.on_message b2 msg);
      Channel.connect ch_b2b1 (fun msg -> Hypervisor.on_message backup_ msg);
      Some b2
    end
  in
  Hypervisor.connect primary_ ~tx_data:ch_pb ~peer:backup_;
  if backup2_ = None then
    Hypervisor.connect backup_ ~tx_ack:ch_bp ~peer:primary_;
  Channel.connect ch_pb (fun msg -> Hypervisor.on_message backup_ msg);
  Channel.connect ch_bp (fun msg -> Hypervisor.on_message primary_ msg);
  let ls =
    if lockstep then
      Some
        {
          hashes = Hashtbl.create 1024;
          compared = 0;
          mismatches = [];
          fail_fast = params.Params.exec_backend = Params.Differential;
        }
    else None
  in
  (match ls with
  | Some ls ->
    Hypervisor.set_on_epoch_boundary primary_ (record_boundary ls);
    Hypervisor.set_on_epoch_boundary backup_ (record_boundary ls);
    (match backup2_ with
    | Some b2 -> Hypervisor.set_on_epoch_boundary b2 (record_boundary ls)
    | None -> ())
  | None -> ());
  let t =
    {
      engine;
      p = params;
      workload;
      primary_;
      backup_;
      backup2_;
      disk_;
      console_;
      ch_pb;
      ch_bp;
      ls;
      failover_ = false;
      reintegration_delay = None;
    }
  in
  Hypervisor.set_on_promote backup_ (fun _ ->
      t.failover_ <- true;
      match t.reintegration_delay with
      | None -> ()
      | Some delay ->
        (* touches both nodes: deliberately actorless (dependent with
           everything) for the model checker *)
        ignore
          (Engine.after engine ~label:"reintegrate" delay (fun () ->
               Hypervisor.revive_as_backup t.primary_;
               Hypervisor.request_reintegration t.backup_)));
  (match backup2_ with
  | Some b2 -> Hypervisor.set_on_promote b2 (fun _ -> t.failover_ <- true)
  | None -> ());
  t

let engine t = t.engine
let primary t = t.primary_
let backup t = t.backup_
let backup2 t = t.backup2_
let disk t = t.disk_
let console t = t.console_
let channel_to_backup t = t.ch_pb
let channel_to_primary t = t.ch_bp

let crash_primary_at t time =
  ignore
    (Engine.at t.engine ~label:"crash" ~actor:"primary" time (fun () ->
         Hypervisor.crash t.primary_))

let crash_on_epoch _t hv target =
  let previous = Hypervisor.get_on_epoch_boundary hv in
  Hypervisor.set_on_epoch_boundary hv (fun ~epoch ~hash ->
      if epoch = target && Hypervisor.alive hv then Hypervisor.crash hv
      else previous ~epoch ~hash)

let crash_primary_on_epoch t target = crash_on_epoch t t.primary_ target

let crash_backup_at t time =
  ignore
    (Engine.at t.engine ~label:"crash" ~actor:"backup" time (fun () ->
         Hypervisor.crash t.backup_))

let crash_backup_on_epoch t target = crash_on_epoch t t.backup_ target

(* ---------- hypervisor faults (ReHype extension) ---------- *)

let hv_of_target t = function `Primary -> t.primary_ | `Backup -> t.backup_

let hv_fault_at t ~target ~kind time =
  let hv = hv_of_target t target in
  ignore
    (Engine.at t.engine ~label:"hv-fault" ~actor:(Hypervisor.name hv) time
       (fun () -> Hypervisor.inject_hv_fault hv kind))

(* Inject mid-epoch, deterministically: the boundary hook fires at the
   start of epoch [target]'s boundary processing, and the fault lands
   half an epoch's worth of simulated time later — inside the epoch,
   between event handlers, wherever the node happens to be.  Hooks
   chain like [crash_on_epoch]'s so several injections (and the
   lockstep recorder) coexist. *)
let hv_fault_on_epoch t ~target ~kind epoch_target =
  let hv = hv_of_target t target in
  let previous = Hypervisor.get_on_epoch_boundary hv in
  let armed = ref false in
  Hypervisor.set_on_epoch_boundary hv (fun ~epoch ~hash ->
      if epoch = epoch_target && Hypervisor.alive hv && not !armed then begin
        armed := true;
        let half =
          Time.scale t.p.Params.instr_time (t.p.Params.epoch_length / 2)
        in
        ignore
          (Engine.after t.engine ~label:"hv-fault" ~actor:(Hypervisor.name hv)
             half (fun () -> Hypervisor.inject_hv_fault hv kind))
      end;
      previous ~epoch ~hash)

let install_fault_model t ~rng model =
  let corrupter flip msg = Message.corrupt ~flip msg in
  Channel.set_fault_model t.ch_pb ~rng:(Rng.split rng) ~corrupter model;
  Channel.set_fault_model t.ch_bp ~rng:(Rng.split rng) ~corrupter model

let faults_injected t =
  let per ch =
    Channel.faults_lost ch + Channel.faults_duplicated ch
    + Channel.faults_corrupted ch + Channel.faults_delayed ch
  in
  per t.ch_pb + per t.ch_bp

let fingerprint t =
  Hashtbl.hash
    [
      (* the virtual clock: schedule interleavings merge at the same
         instant (same-instant dispatches never advance time), while
         states that differ only by a time shift — e.g. successive
         rounds of an idle polling loop — must NOT merge, because
         pending timers fire relative to the absolute clock *)
      Hft_sim.Time.to_ns (Engine.now t.engine);
      Hypervisor.fingerprint t.primary_;
      Hypervisor.fingerprint t.backup_;
      (match t.backup2_ with Some b2 -> Hypervisor.fingerprint b2 | None -> 0);
      Channel.fingerprint t.ch_pb;
      Channel.fingerprint t.ch_bp;
      Disk.fingerprint t.disk_;
      Hashtbl.hash (Console.contents t.console_);
      Engine.pending_fingerprint t.engine;
      Bool.to_int t.failover_;
    ]

let reintegrate_after_failover t ~delay =
  if t.backup2_ <> None then
    invalid_arg
      "System.reintegrate_after_failover: not supported with a backup chain";
  t.reintegration_delay <- Some delay

type outcome = {
  completed_by : [ `Primary | `Promoted_backup ];
  time : Time.t;
  results : Guest_results.t;
  console : string;
  primary_stats : Stats.t;
  backup_stats : Stats.t;
  epochs_compared : int;
  lockstep_mismatches : int list;
  disk_consistent : bool;
  disk_errors : string list;
  failover : bool;
  messages_sent : int;
  bytes_sent : int;
}

let run ?(limit = 200_000_000) t =
  Hypervisor.start t.primary_;
  Hypervisor.start t.backup_;
  (match t.backup2_ with Some b2 -> Hypervisor.start b2 | None -> ());
  Engine.run ~limit t.engine;
  let survivor =
    (* the authoritative machine is the one still acting as a primary;
       after reintegration the original node is alive but has become
       the new backup *)
    if
      Hypervisor.alive t.primary_
      && Hypervisor.halted t.primary_
      && Hypervisor.role t.primary_ = Hypervisor.Primary
    then Some (`Primary, t.primary_)
    else if Hypervisor.alive t.backup_ && Hypervisor.halted t.backup_ then
      Some (`Promoted_backup, t.backup_)
    else if
      match t.backup2_ with
      | Some b2 -> Hypervisor.halted b2
      | None -> false
    then Some (`Promoted_backup, Option.get t.backup2_)
    else if Hypervisor.alive t.primary_ && Hypervisor.halted t.primary_ then
      Some (`Primary, t.primary_)
    else None
  in
  match survivor with
  | None -> failwith "System.run: no virtual machine completed the workload"
  | Some (who, hv) ->
    let errors = ref [] in
    let consistent =
      Disk.Log.check_single_processor_consistency t.disk_ ~errors:(fun e ->
          errors := e :: !errors)
    in
    {
      completed_by = who;
      time = Hypervisor.halt_time hv;
      results = Hypervisor.results hv;
      console = Console.contents t.console_;
      primary_stats = Hypervisor.stats t.primary_;
      backup_stats = Hypervisor.stats t.backup_;
      epochs_compared =
        (match t.ls with Some ls -> ls.compared | None -> 0);
      lockstep_mismatches =
        (match t.ls with Some ls -> List.rev ls.mismatches | None -> []);
      disk_consistent = consistent;
      disk_errors = List.rev !errors;
      failover = t.failover_;
      messages_sent = Channel.messages_sent t.ch_pb;
      bytes_sent = Channel.bytes_sent t.ch_pb;
    }
