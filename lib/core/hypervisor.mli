(** The augmented hypervisor: virtualization plus the paper's
    replica-coordination protocol (rules P1-P7).

    One instance manages one virtual machine on one simulated
    processor.  The VM's kernel runs at real privilege level 1
    (virtual level 0) and its applications at level 3, exactly the
    mapping of section 3.1; every privileged, environment and MMIO
    instruction traps to this module and is simulated against shadow
    state at the paper's measured cost of 15.12 us.

    Execution is divided into epochs of [Params.epoch_length]
    instructions, delimited by the recovery counter.  The two
    instances cooperate:

    - the {b primary} executes against the real devices, buffers
      interrupts during an epoch and relays them (P1), and at each
      epoch end sends [Tme], optionally awaits acknowledgements
      (original protocol), delivers buffered interrupts and sends
      [end,E] (P2);
    - the {b backup} ignores its own device interrupts (P3), acks and
      buffers relayed ones (P4), suppresses I/O and environment
      output, replays forwarded environment-instruction results, and
      at each epoch end waits for [Tme] and [end,E] before delivering
      the same interrupts at the same instruction-stream point (P5);
    - if the primary fails, the backup's failure detector fires while
      it waits, it finishes the failover epoch, delivers what was
      relayed, synthesizes an {e uncertain} completion for every
      outstanding I/O operation (P6/P7), and promotes itself.

    With the revised protocol of section 4.3, the boundary ack wait
    moves to I/O initiation.

    Reintegration of a new backup (left open in the paper) is
    implemented as an extension: at an epoch boundary the primary
    snapshots the VM image, ships it over the link (paying its full
    transfer time), and resumes coordinated execution once the new
    backup confirms. *)

type role = Primary | Backup | Promoted

type t

val arm_manifest_validator :
  params:Params.t ->
  workload:Hft_guest.Workload.t ->
  deprivileged:bool ->
  Hft_machine.Cpu.t ->
  unit
(** When [params.validate_manifest] is set, analyze the workload's
    (possibly rewritten) image into a compilation manifest
    ({!Hft_analysis.Manifest.of_code_cached}) and arm [cpu]'s runtime
    certificate validator with it.  [deprivileged] maps the [Priv0]
    certificate through section 3.1's deprivileging (virtual 0 runs at
    real 1); {!Bare} passes [false].  A no-op when validation is off. *)

val arm_translation :
  params:Params.t ->
  workload:Hft_guest.Workload.t ->
  deprivileged:bool ->
  Hft_machine.Cpu.t ->
  unit
(** When [params.exec_backend] is [Threaded] or [Differential],
    analyze the workload's image and compile its certified superblocks
    into [cpu]'s direct-threaded translation cache
    ({!Hft_analysis.Manifest.install_translation}).  A stale manifest
    degrades silently to the full-interpreter path.  A no-op under
    [Interp]. *)

val create :
  name:string ->
  role:role ->
  port:int ->
  engine:Hft_sim.Engine.t ->
  params:Params.t ->
  workload:Hft_guest.Workload.t ->
  disk:Hft_devices.Disk.t ->
  console:Hft_devices.Console.t ->
  clock:Hft_devices.Clock.t ->
  ?obs:Hft_obs.Recorder.t ->
  unit ->
  t
(** [obs] receives typed protocol events (epoch boundaries, ack waits,
    interrupt buffering and delivery, failover steps, …) under this
    hypervisor's name as the source; defaults to the null recorder,
    which costs nothing. *)

val connect :
  ?tx_data:Message.t Hft_net.Channel.t ->
  ?tx_ack:Message.t Hft_net.Channel.t ->
  t ->
  peer:t ->
  unit
(** Wire the outgoing channels: [tx_data] carries protocol data
    downstream (primary to backup, or a chained backup's forwarded
    stream to the next backup), [tx_ack] carries acknowledgements and
    the reintegration handshake upstream.  The peer reference is used
    only for the reintegration snapshot's data plane; all coordination
    goes through messages. *)

val on_message : t -> Message.t -> unit
(** Deliver an incoming protocol message; installed as the receive
    callback of the peer's channel. *)

val start : t -> unit
(** Write the workload configuration, arm the first epoch, and begin
    executing. *)

val crash : t -> unit
(** Fail-stop this processor: it stops executing and sending; its
    in-flight messages are still delivered (the channel handles
    that). *)

(* Accessors *)

val name : t -> string
val role : t -> role
val alive : t -> bool
val halted : t -> bool
val halt_time : t -> Hft_sim.Time.t
val epoch : t -> int
val cpu : t -> Hft_machine.Cpu.t
val stats : t -> Stats.t
val results : t -> Guest_results.t

val vm_state_hash : t -> int
(** Hash of the architectural VM state including the virtual control
    registers (and excluding the physical TLB, which the
    hypervisor-managed mode keeps invisible). *)

val outstanding_io : t -> int
(** I/O operations issued (or, at the backup, suppressed) whose
    completion interrupt has not yet been delivered to the VM — the
    set rules P6/P7 must cover at failover. *)

val fingerprint : t -> int
(** Canonical digest of the whole node: VM state hash plus every piece
    of protocol state (role, liveness, blocking, reliable-stream
    counters and queues, buffered interrupts, forwarded values,
    virtual clocks).  Timing {e statistics} and arrival stamps are
    excluded, so two runs that reach behaviourally identical states by
    different schedules fingerprint alike.  Used with
    {!Hft_sim.Engine.pending_fingerprint} and the channel/disk
    fingerprints to prune the model checker's state graph. *)

(* Hooks installed by {!System}. *)

val set_on_epoch_boundary : t -> (epoch:int -> hash:int -> unit) -> unit
(** Called at every epoch boundary, before interrupt delivery, with
    the VM state hash at that instruction-stream point. *)

val get_on_epoch_boundary : t -> epoch:int -> hash:int -> unit
(** The currently installed boundary hook, so fault installers can
    chain onto it instead of displacing each other. *)

val set_on_halt : t -> (t -> unit) -> unit
val set_on_promote : t -> (t -> unit) -> unit

(* Reintegration extension. *)

val request_reintegration : t -> unit
(** Ask a [Primary] or [Promoted] instance to ship a snapshot to its
    (revived) peer at the next epoch boundary and resume replication.
    @raise Invalid_argument on a [Backup]. *)

val revive_as_backup : t -> unit
(** Reset a crashed instance so it can receive a snapshot and rejoin
    as the backup. *)

(* Hypervisor-failure recovery (ReHype extension). *)

type corrupt_target =
  | C_epoch  (** epoch counters ([epoch], [relay_epoch], [env_idx]) *)
  | C_acks  (** ack bookkeeping ([acked], [data_sent], [data_recvd]) *)
  | C_rtx  (** the retransmission queue *)

type hv_fault = Hv_crash | Hv_hang | Hv_corrupt of corrupt_target

type hv_health = Healthy | Faulted of hv_fault | Recovering

val hv_fault_kind : hv_fault -> string
(** Stable tag: ["crash"], ["hang"], ["corrupt-epoch"],
    ["corrupt-acks"], ["corrupt-rtx"]. *)

val inject_hv_fault : t -> hv_fault -> unit
(** Seed a hypervisor fault.  With [Params.hv_recovery] the node
    detects it (panic handler, out-of-band watchdog, or the
    recovery-block integrity audit) and performs an in-place
    microreboot: guest memory and CPU state are preserved, protocol
    counters are restored from the recovery block, parked disk
    completions and dropped channel traffic are reconciled, and epochs
    resume — invisibly to both guest replicas.  A second fault during
    detection or recovery, or an exhausted reboot budget
    ([Params.hv_recovery_max]), escalates to fail-stop and the
    ordinary failover path.  Without [Params.hv_recovery] every
    hypervisor fault is immediately fail-stop (the paper's
    assumption).  No-op on a dead or halted node. *)

val hv_health : t -> hv_health
(** The node's recovery state; [Healthy] except between fault
    injection and the end of its microreboot.  The model checker uses
    this to assert that a down hypervisor does no protocol work. *)
