open Hft_sim

type protocol = Original | Revised

type tlb_mode = Hypervisor_managed | Guest_managed

type epoch_mechanism = Recovery_register | Code_rewriting

type hash_scheme = Incremental | Full_rehash

type exec_backend = Interp | Threaded | Differential

type t = {
  epoch_length : int;
  protocol : protocol;
  tlb_mode : tlb_mode;
  epoch_mechanism : epoch_mechanism;
  instr_time : Time.t;
  hv_entry_exit : Time.t;
  hv_work : Time.t;
  hv_epoch_local : Time.t;
  hv_send_setup : Time.t;
  hv_intr_deliver : Time.t;
  hv_intr_receive : Time.t;
  hv_tlb_fill : Time.t;
  bare_trap_latency : Time.t;
  link : Hft_net.Link.t;
  retransmit : bool;
  ack_wait : bool;
  rtx_timeout : Time.t;
  rtx_give_up : int;
  detector_timeout : Time.t;
  backup_clock_skew : Time.t;
  hv_recovery : bool;
  hv_reboot_time : Time.t;
  hv_panic_latency : Time.t;
  watchdog_interval : Time.t;
  hv_recovery_max : int;
  disk : Hft_devices.Disk.params;
  cpu_config : Hft_machine.Cpu.config;
  hash_scheme : hash_scheme;
  validate_manifest : bool;
  exec_backend : exec_backend;
  profile_guest : bool;
}

let default =
  {
    epoch_length = 4096;
    protocol = Original;
    tlb_mode = Hypervisor_managed;
    epoch_mechanism = Recovery_register;
    instr_time = Time.of_ns 20;
    hv_entry_exit = Time.of_us 8;
    hv_work = Time.of_us_float 7.12;
    hv_epoch_local = Time.of_us 70;
    hv_send_setup = Time.of_us 90;
    hv_intr_deliver = Time.of_us 5;
    hv_intr_receive = Time.of_us 10;
    hv_tlb_fill = Time.of_us_float 7.12;
    bare_trap_latency = Time.of_ns 500;
    link = Hft_net.Link.ethernet;
    retransmit = true;
    ack_wait = true;
    rtx_timeout = Time.of_ms 1;
    rtx_give_up = 25;
    detector_timeout = Time.of_ms 100;
    backup_clock_skew = Time.of_us 1500;
    hv_recovery = true;
    hv_reboot_time = Time.of_ms 10;
    hv_panic_latency = Time.of_us 50;
    watchdog_interval = Time.of_ms 5;
    hv_recovery_max = 8;
    disk = Hft_devices.Disk.default_params;
    cpu_config = Hft_machine.Cpu.default_config;
    hash_scheme = Incremental;
    validate_manifest = true;
    exec_backend = Interp;
    profile_guest = false;
  }

let hsim t = Time.add t.hv_entry_exit t.hv_work

let with_epoch_length t epoch_length =
  if epoch_length <= 0 then invalid_arg "Params.with_epoch_length: must be positive";
  { t with epoch_length }

let with_protocol t protocol = { t with protocol }
let with_link t link = { t with link }
let with_retransmit t retransmit = { t with retransmit }
let with_ack_wait t ack_wait = { t with ack_wait }
let with_hash_scheme t hash_scheme = { t with hash_scheme }
let with_validate_manifest t validate_manifest = { t with validate_manifest }
let with_exec_backend t exec_backend = { t with exec_backend }
let with_profile_guest t profile_guest = { t with profile_guest }

let backend_name = function
  | Interp -> "interp"
  | Threaded -> "threaded"
  | Differential -> "differential"

let backend_of_name = function
  | "interp" -> Some Interp
  | "threaded" -> Some Threaded
  | "differential" -> Some Differential
  | _ -> None

let pp_protocol fmt = function
  | Original -> Format.pp_print_string fmt "original"
  | Revised -> Format.pp_print_string fmt "revised"

let pp_backend fmt b = Format.pp_print_string fmt (backend_name b)

let pp fmt t =
  Format.fprintf fmt
    "epoch=%d protocol=%a tlb=%s link=%s hsim=%a hepoch-local=%a send=%a"
    t.epoch_length pp_protocol t.protocol
    (match t.tlb_mode with
    | Hypervisor_managed -> "hypervisor"
    | Guest_managed -> "guest")
    t.link.Hft_net.Link.name Time.pp (hsim t) Time.pp t.hv_epoch_local Time.pp
    t.hv_send_setup
