(** Per-hypervisor counters, the raw material of section 4's
    measurements. *)

type t = {
  mutable instructions : int;
      (** ordinary instructions executed directly by the VM *)
  mutable simulated : int;
      (** privileged / environment / MMIO instructions simulated by
          the hypervisor — the [nsim] of the paper's model *)
  mutable epochs : int;
  mutable interrupts_buffered : int;
  mutable interrupts_delivered : int;
  mutable env_values : int;
  mutable io_submitted : int;
  mutable io_suppressed : int;     (** backup-side suppressions *)
  mutable uncertain_synthesized : int;  (** P7 interrupts at failover *)
  mutable spurious_completions : int;
      (** disk completions that arrived with no outstanding operation
          — zero in a correct run; the model checker's P6/P7 invariant
          treats any increment as a violation *)
  mutable tlb_fills : int;
  mutable reflected_traps : int;   (** traps delivered to the guest *)
  mutable retransmits : int;
      (** reliable messages resent after an unanswered timeout *)
  mutable duplicates_dropped : int;
      (** received copies of already-delivered reliable messages *)
  mutable corruptions_detected : int;
      (** frames whose checksum failed; treated as loss *)
  mutable pages_hashed : int;
      (** memory pages re-hashed by epoch-boundary state hashes *)
  mutable pages_skipped : int;
      (** pages whose cached digest the boundary hash reused — the
          dirty-page tracking win *)
  mutable snapshot_delta_bytes : int;
      (** bytes actually copied by reintegration snapshots (full image
          on the first, dirty pages only thereafter) *)
  mutable hv_faults_injected : int;
      (** hypervisor-level faults (crash, hang, state corruption)
          injected into this node *)
  mutable microreboots : int;
      (** in-place microreboots completed (ReHype-style recovery) *)
  mutable reconciled_ios : int;
      (** disk completions that arrived while the hypervisor was down
          and were re-delivered from the controller's completion ring
          after the microreboot *)
  mutable reconciled_msgs : int;
      (** channel messages dropped on the floor by a down hypervisor
          and healed afterwards by resync/retransmission *)
  mutable recovery_cycles : int;
      (** recovery attempts begun (detection events); exceeds
          [microreboots] when an attempt escalated to fail-stop *)
  mutable recovery_escalations : int;
      (** recovery attempts abandoned as fail-stop: a second fault
          arrived mid-recovery, or the per-node reboot budget
          ([Params.hv_recovery_max]) was exhausted *)
  mutable recovery_windows : Hft_sim.Time.t list;
      (** per-microreboot wall time from fault injection to the end of
          reconciliation, newest first *)
  mutable certified_instructions : int;
      (** instructions completed inside certified superblocks, as
          observed by the runtime certificate validator
          ({!Hft_machine.Cpu.validator_coverage}); 0 when
          [Params.validate_manifest] is off *)
  mutable validated_instructions : int;
      (** instructions completed while the validator was armed — the
          denominator of the dynamic certified coverage *)
  mutable blocks_translated : int;
      (** basic blocks compiled into the direct-threaded translation
          cache at boot; 0 under the [Interp] backend *)
  mutable superinstructions_fused : int;
      (** adjacent instruction pairs fused into one closure *)
  mutable threaded_instrs : int;
      (** instructions completed inside translated superblocks *)
  mutable threaded_entries : int;
      (** dispatch-loop entries into translated code *)
  mutable loops_hoisted : int;
      (** certified counted loops compiled as batched unrolls — the
          loop-bound certificate spent at translation time *)
  mutable hoisted_decrements : int;
      (** per-iteration recovery-counter budget decrements avoided by
          those batches ({!Hft_machine.Translate.st.x_hoist_saved}) *)
  mutable fallback_budget : int;
      (** threaded exits/refusals: block would overrun fuel or the
          recovery counter *)
  mutable fallback_priv : int;
      (** entry refused: privilege outside the certified mask *)
  mutable fallback_link : int;
      (** control left the translated region *)
  mutable fallback_indirect : int;
      (** indirect jump ([Jr]) with a runtime target *)
  mutable fallback_bail : int;
      (** non-ordinary instruction handed back to the interpreter *)
  mutable fallback_stop : int;
      (** memory stop (MMIO, TLB miss, protection, fault) mid-block *)
  mutable ack_wait : Hft_sim.Time.t;
      (** time the primary spent awaiting acknowledgements *)
  mutable boundary : Hft_sim.Time.t;
      (** time spent in epoch-boundary processing *)
  mutable idle : Hft_sim.Time.t;   (** WFI idle time *)
  mutable intr_delay : Hft_sim.Time.t;
      (** total time device interrupts spent buffered before delivery
          — the paper's delay(EL) term, summed *)
}

val create : unit -> t

val add_time :
  t -> [ `Ack_wait | `Boundary | `Idle | `Intr_delay ] -> Hft_sim.Time.t -> unit

val certified_coverage : t -> float option
(** [certified_instructions / validated_instructions], or [None] when
    nothing was validated. *)

val mean_intr_delay_us : t -> float
(** Average buffered-to-delivered latency of an interrupt, in
    microseconds; 0 when none were delivered. *)

val threaded_fraction : t -> float option
(** [threaded_instrs / instructions], or [None] when nothing ran
    threaded. *)

val pp : Format.formatter -> t -> unit
