(** Hypervisor-to-hypervisor protocol messages.

    The forward direction (primary to backup) carries the traffic of
    rules P1 and P2: relayed interrupts, forwarded
    environment-instruction results, the end-of-epoch timer state
    [Tme], and the [end,E] marker.  The reverse direction carries the
    acknowledgements rule P2 (original) or the I/O gate (revised)
    waits for, plus the reintegration handshake.

    Every message has a byte size used by the link model; disk-read
    completions carry the whole data block, which is what makes reads
    measurably slower than writes under replication (paper
    section 4.2).

    Beyond the paper (which assumes reliable FIFO channels), every
    message is hardened for a fair-lossy link: the header carries a
    checksum over the whole frame, and messages belonging to the
    reliable stream carry a second, stable sequence number [dseq] that
    survives retransmission, so the receiver can detect corruption
    (treated as loss), discard duplicates and restore sender order. *)

type relayed_completion = {
  status : int;  (** {!Hft_guest.Layout.status_ok} or [status_uncertain] *)
  dma : (int * Hft_machine.Word.t array) option;
      (** address and contents for a performed read *)
}

type body =
  | Intr of { epoch : int; completion : relayed_completion }
      (** P1: a device interrupt received and buffered during [epoch] *)
  | Env_val of { epoch : int; idx : int; value : Hft_machine.Word.t }
      (** result of the [idx]-th environment instruction simulated in
          [epoch] *)
  | Tme of { epoch : int; tod_us : Hft_machine.Word.t; timer_deadline_us : int }
      (** P2: the primary's virtual clocks at the end of [epoch];
          [timer_deadline_us = -1] when no interval is armed *)
  | Epoch_end of { epoch : int }  (** P2: [end, E] *)
  | Ack of { upto : int }
      (** P4: cumulative acknowledgement — every reliable message with
          [dseq < upto] has been received *)
  | Snapshot_offer of { epoch : int; code_hash : int }
      (** reintegration: a state snapshot follows *)
  | Snapshot_done of { epoch : int }
      (** reintegration: the new backup restored the snapshot *)
  | Failover of { epoch : int }
      (** chain extension (t = 2): a promoting backup tells its
          downstream backup which epoch was the failover epoch, so the
          downstream performs the same P6/P7 delivery and re-homes to
          the new primary without promoting itself *)
  | Resync of { upto : int }
      (** recovery extension: sent (unreliably) by a node that has just
          completed a microreboot.  [upto] is its receive cursor; the
          peer treats it as a cumulative ack and immediately
          retransmits everything past it, healing any messages the
          down hypervisor dropped without waiting out a timeout *)

type t = {
  seq : int;
      (** wire-level number, unique per transmission (a retransmitted
          copy gets a fresh [seq]) *)
  dseq : int;
      (** position in the sender's reliable stream, stable across
          retransmissions; [-1] marks an unreliable message (an [Ack]),
          which is never retransmitted or acknowledged *)
  checksum : int;  (** over [seq], [dseq] and the body *)
  body : body;
}

val make : seq:int -> ?dseq:int -> body -> t
(** Seal a message: compute its checksum.  [dseq] defaults to [-1]
    (unreliable). *)

val body_kind : body -> string
(** Short stable tag for observability ("intr", "env", "tme", "end",
    "ack", "snap-offer", "snap-done", "failover", "resync"). *)

val reliable : t -> bool
(** [dseq >= 0]: the message is part of the acknowledged,
    retransmitted, dedup-checked stream. *)

val valid : t -> bool
(** Does the checksum match the contents?  False after {!corrupt}. *)

val hash : t -> int
(** Content digest of the whole message (header and body), used by the
    model checker to hash a channel's in-flight multiset.  Cheap: it
    folds the already-computed checksum with the header fields. *)

val corrupt : flip:int -> t -> t
(** Simulate wire damage: a copy of the message whose checksum no
    longer matches (the low bit of [flip] is forced so [flip = 0]
    still corrupts).  Used by the channel fault model. *)

val bytes : ?snapshot_bytes:int -> t -> int
(** Wire size.  [snapshot_bytes] sizes a [Snapshot_offer], whose
    payload (the whole VM image) travels with it. *)

val pp : Format.formatter -> t -> unit
