open Hft_sim

type t = {
  mutable instructions : int;
  mutable simulated : int;
  mutable epochs : int;
  mutable interrupts_buffered : int;
  mutable interrupts_delivered : int;
  mutable env_values : int;
  mutable io_submitted : int;
  mutable io_suppressed : int;
  mutable uncertain_synthesized : int;
  mutable spurious_completions : int;
  mutable tlb_fills : int;
  mutable reflected_traps : int;
  mutable retransmits : int;
  mutable duplicates_dropped : int;
  mutable corruptions_detected : int;
  mutable pages_hashed : int;
  mutable pages_skipped : int;
  mutable snapshot_delta_bytes : int;
  mutable hv_faults_injected : int;
  mutable microreboots : int;
  mutable reconciled_ios : int;
  mutable reconciled_msgs : int;
  mutable recovery_cycles : int;
  mutable recovery_escalations : int;
  mutable recovery_windows : Time.t list;
  mutable certified_instructions : int;
  mutable validated_instructions : int;
  mutable blocks_translated : int;
  mutable superinstructions_fused : int;
  mutable threaded_instrs : int;
  mutable threaded_entries : int;
  mutable loops_hoisted : int;
  mutable hoisted_decrements : int;
  mutable fallback_budget : int;
  mutable fallback_priv : int;
  mutable fallback_link : int;
  mutable fallback_indirect : int;
  mutable fallback_bail : int;
  mutable fallback_stop : int;
  mutable ack_wait : Time.t;
  mutable boundary : Time.t;
  mutable idle : Time.t;
  mutable intr_delay : Time.t;
}

let create () =
  {
    instructions = 0;
    simulated = 0;
    epochs = 0;
    interrupts_buffered = 0;
    interrupts_delivered = 0;
    env_values = 0;
    io_submitted = 0;
    io_suppressed = 0;
    uncertain_synthesized = 0;
    spurious_completions = 0;
    tlb_fills = 0;
    reflected_traps = 0;
    retransmits = 0;
    duplicates_dropped = 0;
    corruptions_detected = 0;
    pages_hashed = 0;
    pages_skipped = 0;
    snapshot_delta_bytes = 0;
    hv_faults_injected = 0;
    microreboots = 0;
    reconciled_ios = 0;
    reconciled_msgs = 0;
    recovery_cycles = 0;
    recovery_escalations = 0;
    recovery_windows = [];
    certified_instructions = 0;
    validated_instructions = 0;
    blocks_translated = 0;
    superinstructions_fused = 0;
    threaded_instrs = 0;
    threaded_entries = 0;
    loops_hoisted = 0;
    hoisted_decrements = 0;
    fallback_budget = 0;
    fallback_priv = 0;
    fallback_link = 0;
    fallback_indirect = 0;
    fallback_bail = 0;
    fallback_stop = 0;
    ack_wait = Time.zero;
    boundary = Time.zero;
    idle = Time.zero;
    intr_delay = Time.zero;
  }

let add_time t kind d =
  match kind with
  | `Ack_wait -> t.ack_wait <- Time.add t.ack_wait d
  | `Boundary -> t.boundary <- Time.add t.boundary d
  | `Idle -> t.idle <- Time.add t.idle d
  | `Intr_delay -> t.intr_delay <- Time.add t.intr_delay d

let certified_coverage t =
  if t.validated_instructions = 0 then None
  else
    Some
      (float_of_int t.certified_instructions
      /. float_of_int t.validated_instructions)

let mean_intr_delay_us t =
  if t.interrupts_delivered = 0 then 0.0
  else Time.to_us t.intr_delay /. float_of_int t.interrupts_delivered

let threaded_fraction t =
  if t.instructions = 0 then None
  else if t.threaded_instrs = 0 then None
  else Some (float_of_int t.threaded_instrs /. float_of_int t.instructions)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>instructions: %d@ simulated: %d@ epochs: %d@ interrupts: %d \
     buffered, %d delivered@ env values: %d@ io: %d submitted, %d \
     suppressed, %d uncertain synthesized@ tlb fills: %d@ reflected traps: \
     %d@ channel: %d retransmits, %d duplicates dropped, %d corruptions \
     detected@ hashing: %d pages hashed, %d skipped@ snapshot bytes: %d@ \
     recovery: %d hv faults, %d microreboots, %d ios + %d msgs reconciled@ \
     certified: %d of %d validated instructions%s@ \
     threaded: %d instrs%s over %d entries (%d blocks, %d fused, %d loops \
     hoisted, %d decrements avoided); fallbacks: \
     %d budget, %d priv, %d link, %d indirect, %d bail, %d stop@ \
     ack wait: %a@ boundary: %a@ idle: %a@ mean intr delay: %.1fus@]"
    t.instructions t.simulated t.epochs t.interrupts_buffered
    t.interrupts_delivered t.env_values t.io_submitted t.io_suppressed
    t.uncertain_synthesized t.tlb_fills t.reflected_traps t.retransmits
    t.duplicates_dropped t.corruptions_detected t.pages_hashed
    t.pages_skipped t.snapshot_delta_bytes t.hv_faults_injected
    t.microreboots t.reconciled_ios t.reconciled_msgs
    t.certified_instructions t.validated_instructions
    (match certified_coverage t with
    | Some c -> Printf.sprintf " (%.1f%%)" (100.0 *. c)
    | None -> "")
    t.threaded_instrs
    (match threaded_fraction t with
    | Some f -> Printf.sprintf " (%.1f%%)" (100.0 *. f)
    | None -> "")
    t.threaded_entries t.blocks_translated t.superinstructions_fused
    t.loops_hoisted t.hoisted_decrements
    t.fallback_budget t.fallback_priv t.fallback_link t.fallback_indirect
    t.fallback_bail t.fallback_stop
    Time.pp t.ack_wait
    Time.pp t.boundary Time.pp t.idle (mean_intr_delay_us t)
