type relayed_completion = {
  status : int;
  dma : (int * Hft_machine.Word.t array) option;
}

type body =
  | Intr of { epoch : int; completion : relayed_completion }
  | Env_val of { epoch : int; idx : int; value : Hft_machine.Word.t }
  | Tme of { epoch : int; tod_us : Hft_machine.Word.t; timer_deadline_us : int }
  | Epoch_end of { epoch : int }
  | Ack of { upto : int }
  | Snapshot_offer of { epoch : int; code_hash : int }
  | Snapshot_done of { epoch : int }
  | Failover of { epoch : int }
  | Resync of { upto : int }

type t = { seq : int; dseq : int; checksum : int; body : body }

(* ---------- checksum ---------- *)

let fnv_offset = 0x3bf29ce484222325
let fnv_prime = 0x100000001b3
let fnv_mask = (1 lsl 62) - 1

let mix h v = (h lxor (v land fnv_mask)) * fnv_prime land fnv_mask

let body_checksum h body =
  match body with
  | Intr { epoch; completion } ->
    let h = mix (mix h 1) epoch in
    let h = mix h completion.status in
    (match completion.dma with
    | None -> mix h 0
    | Some (addr, data) ->
      let h = mix (mix h addr) (Array.length data) in
      Array.fold_left mix h data)
  | Env_val { epoch; idx; value } -> mix (mix (mix (mix h 2) epoch) idx) value
  | Tme { epoch; tod_us; timer_deadline_us } ->
    mix (mix (mix (mix h 3) epoch) tod_us) timer_deadline_us
  | Epoch_end { epoch } -> mix (mix h 4) epoch
  | Ack { upto } -> mix (mix h 5) upto
  | Snapshot_offer { epoch; code_hash } -> mix (mix (mix h 6) epoch) code_hash
  | Snapshot_done { epoch } -> mix (mix h 7) epoch
  | Failover { epoch } -> mix (mix h 8) epoch
  | Resync { upto } -> mix (mix h 9) upto

let checksum_of ~seq ~dseq body =
  body_checksum (mix (mix fnv_offset seq) dseq) body

let make ~seq ?(dseq = -1) body =
  { seq; dseq; checksum = checksum_of ~seq ~dseq body; body }

let body_kind = function
  | Intr _ -> "intr"
  | Env_val _ -> "env"
  | Tme _ -> "tme"
  | Epoch_end _ -> "end"
  | Ack _ -> "ack"
  | Snapshot_offer _ -> "snap-offer"
  | Snapshot_done _ -> "snap-done"
  | Failover _ -> "failover"
  | Resync _ -> "resync"

let reliable t = t.dseq >= 0

let valid t = t.checksum = checksum_of ~seq:t.seq ~dseq:t.dseq t.body

(* The stored checksum already digests seq, dseq and the whole body;
   folding it once more with the header fields keeps corrupted copies
   (whose stored checksum was damaged) distinct from intact ones. *)
let hash t = mix (mix (mix fnv_offset t.seq) t.dseq) t.checksum

let corrupt ~flip t =
  (* Simulated payload damage: some bits of the frame are wrong on the
     wire.  Damaging the stored checksum (never with a zero mask) is
     the simplest model that is always *detectable* — flipping body
     bits instead would merely reach the same mismatch through the
     other operand of the comparison. *)
  { t with checksum = t.checksum lxor (flip lor 1) land fnv_mask }

(* ---------- wire size ---------- *)

(* The 24-byte header carries the wire sequence number, the reliable
   stream sequence number and the checksum. *)
let header_bytes = 24

let bytes ?(snapshot_bytes = 0) t =
  header_bytes
  +
  match t.body with
  | Intr { completion; _ } -> (
    16
    + match completion.dma with None -> 0 | Some (_, data) -> 8 + (4 * Array.length data))
  | Env_val _ -> 16
  | Tme _ -> 16
  | Epoch_end _ -> 8
  | Ack _ -> 8
  | Snapshot_offer _ -> 16 + snapshot_bytes
  | Snapshot_done _ -> 8
  | Failover _ -> 8
  | Resync _ -> 8

let pp fmt t =
  match t.body with
  | Intr { epoch; completion } ->
    Format.fprintf fmt "[#%d intr epoch=%d status=%d%s]" t.seq epoch
      completion.status
      (match completion.dma with
      | None -> ""
      | Some (addr, data) ->
        Printf.sprintf " dma@0x%x[%d]" addr (Array.length data))
  | Env_val { epoch; idx; value } ->
    Format.fprintf fmt "[#%d env epoch=%d idx=%d value=%d]" t.seq epoch idx value
  | Tme { epoch; tod_us; timer_deadline_us } ->
    Format.fprintf fmt "[#%d tme epoch=%d tod=%dus deadline=%d]" t.seq epoch
      tod_us timer_deadline_us
  | Epoch_end { epoch } -> Format.fprintf fmt "[#%d end epoch=%d]" t.seq epoch
  | Ack { upto } -> Format.fprintf fmt "[#%d ack upto=%d]" t.seq upto
  | Snapshot_offer { epoch; _ } ->
    Format.fprintf fmt "[#%d snapshot-offer epoch=%d]" t.seq epoch
  | Snapshot_done { epoch } ->
    Format.fprintf fmt "[#%d snapshot-done epoch=%d]" t.seq epoch
  | Failover { epoch } ->
    Format.fprintf fmt "[#%d failover epoch=%d]" t.seq epoch
  | Resync { upto } ->
    Format.fprintf fmt "[#%d resync upto=%d]" t.seq upto
