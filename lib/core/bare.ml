open Hft_sim
open Hft_machine
open Hft_devices

let max_burst = 2_000_000

type t = {
  engine : Engine.t;
  p : Params.t;
  cpu : Cpu.t;
  disk : Disk.t;
  ctl : Disk_ctl.t;
  clock : Clock.t;
  timer : Interval_timer.t;
  console : Console.t;
  pending : Interrupt.Pending.t;
  workload : Hft_guest.Workload.t;
  mutable halted : bool;
  mutable halt_time : Time.t;
}

let fill_block ~block_words block =
  Array.init block_words (fun i -> Word.mask ((block * 0x01000193) + i))

let create ?(params = Params.default) ?(disk_seed = 42) ~workload () =
  let engine = Engine.create () in
  let cpu =
    Cpu.create ~config:params.Params.cpu_config
      ~code:workload.Hft_guest.Workload.program.Asm.code ()
  in
  Hypervisor.arm_manifest_validator ~params ~workload ~deprivileged:false cpu;
  (* a single machine has no oracle to differ from, so [Differential]
     degenerates to [Threaded] here *)
  Hypervisor.arm_translation ~params ~workload ~deprivileged:false cpu;
  let disk =
    Disk.create ~engine ~rng:(Rng.create disk_seed) params.Params.disk
  in
  let pending = Interrupt.Pending.create () in
  let timer =
    Interval_timer.create ~engine
      ~on_expire:(fun () -> Interrupt.Pending.post pending Interrupt.Timer_expired)
      ()
  in
  {
    engine;
    p = params;
    cpu;
    disk;
    ctl = Disk_ctl.create ();
    clock = Clock.create ~engine ();
    timer;
    console = Console.create ();
    pending;
    workload;
    halted = false;
    halt_time = Time.zero;
  }

let engine t = t.engine
let cpu t = t.cpu
let disk t = t.disk
let console t = t.console

let init_disk_blocks t =
  let prm = Disk.params t.disk in
  for block = 0 to prm.Disk.blocks - 1 do
    Disk.write_block_now t.disk block
      (fill_block ~block_words:prm.Disk.block_words block)
  done

(* Interrupt delivery: hardware vectoring plus the interrupt kind in
   scratch0 for the guest dispatcher. *)
let deliver_interrupt t intr =
  let kind =
    match intr with
    | Interrupt.Disk_completion c ->
      (* For reads the device DMA already ran at completion; the
         status register was latched then too.  Re-latch here so
         back-to-back completions are each visible. *)
      Disk_ctl.set_status t.ctl
        (match c.Disk.status with
        | Disk.Ok -> Hft_guest.Layout.status_ok
        | Disk.Uncertain -> Hft_guest.Layout.status_uncertain);
      Hft_guest.Layout.intr_kind_disk
    | Interrupt.Timer_expired -> Hft_guest.Layout.intr_kind_timer
  in
  Cpu.set_cr t.cpu Isa.Cr_scratch0 kind;
  Cpu.deliver_trap t.cpu ~cause:Isa.Cause.interrupt ~epc:(Cpu.pc t.cpu)

let on_disk_complete t ~dma (c : Disk.completion) =
  (match (c.Disk.op, c.Disk.data) with
  | Disk.Read _, Some data ->
    (* device DMA straight into guest memory *)
    Memory.blit_in (Cpu.mem t.cpu) ~addr:dma data
  | _ -> ());
  Interrupt.Pending.post t.pending (Interrupt.Disk_completion c)

let submit_io t (db : Disk_ctl.doorbell) =
  let prm = Disk.params t.disk in
  let op =
    if db.Disk_ctl.cmd = Hft_guest.Layout.cmd_write then
      Disk.Write
        {
          block = db.Disk_ctl.block;
          data =
            Memory.blit_out (Cpu.mem t.cpu) ~addr:db.Disk_ctl.dma
              ~len:prm.Disk.block_words;
        }
    else Disk.Read { block = db.Disk_ctl.block }
  in
  let dma = db.Disk_ctl.dma in
  ignore
    (Disk.submit t.disk ~port:0 op ~on_complete:(fun c ->
         on_disk_complete t ~dma c))

let rec schedule_step t delay =
  ignore (Engine.after t.engine delay (fun () -> step t))

and step t =
  if not t.halted then begin
    (* deliver one pending interrupt if the guest will take it *)
    if
      (not (Interrupt.Pending.is_empty t.pending))
      && Cpu.interrupts_enabled t.cpu
    then begin
      match Interrupt.Pending.take t.pending with
      | Some intr ->
        deliver_interrupt t intr;
        schedule_step t t.p.Params.bare_trap_latency
      | None -> assert false
    end
    else begin
      let fuel =
        match Engine.next_time t.engine with
        | Some next ->
          let gap = Time.to_ns (Time.diff next (Engine.now t.engine)) in
          let n = gap / Time.to_ns t.p.Params.instr_time in
          max 1 (min n max_burst)
        | None -> max_burst
      in
      (* with an interrupt pending but masked, keep bursts short so the
         enable edge is noticed promptly, as hardware sampling would *)
      let fuel =
        if Interrupt.Pending.is_empty t.pending then fuel else min fuel 64
      in
      let res = Cpu.run t.cpu ~fuel in
      let dt = Time.scale t.p.Params.instr_time res.Cpu.executed in
      ignore
        (Engine.after t.engine dt (fun () -> handle_stop t res.Cpu.stop))
    end
  end

and handle_stop t stop =
  if not t.halted then
    match stop with
    | Cpu.Fuel | Cpu.Recovery -> step t
    | Cpu.Stop_halt ->
      t.halted <- true;
      t.halt_time <- Engine.now t.engine
    | Cpu.Stop_wfi ->
      if not (Interrupt.Pending.is_empty t.pending) then step t
      else begin
        (* idle until something happens *)
        match Engine.next_time t.engine with
        | Some next ->
          ignore (Engine.at t.engine next (fun () -> step t))
        | None -> failwith "Bare.run: guest waits forever (no pending events)"
      end
    | Cpu.Env i ->
      (match i with
      | Isa.Rdtod rd -> Cpu.set_reg t.cpu rd (Clock.read_us t.clock)
      | Isa.Rdtmr rd ->
        Cpu.set_reg t.cpu rd (Word.mask (Interval_timer.remaining_us t.timer))
      | Isa.Wrtmr rs ->
        Interval_timer.set t.timer ~us:(Cpu.reg t.cpu rs)
      | Isa.Out rs -> Console.put t.console (Cpu.reg t.cpu rs)
      | _ -> failwith "Bare: unexpected environment instruction");
      Cpu.advance_pc t.cpu;
      ignore (Cpu.tick_recovery t.cpu);
      schedule_step t t.p.Params.instr_time
    | Cpu.Priv i ->
      (* guest user code attempted a privileged instruction *)
      ignore i;
      Cpu.deliver_trap t.cpu ~cause:Isa.Cause.privilege ~epc:(Cpu.pc t.cpu);
      schedule_step t t.p.Params.bare_trap_latency
    | Cpu.Mmio_read { paddr; reg } ->
      Cpu.set_reg t.cpu reg (Disk_ctl.read t.ctl ~paddr);
      Cpu.advance_pc t.cpu;
      ignore (Cpu.tick_recovery t.cpu);
      schedule_step t t.p.Params.instr_time
    | Cpu.Mmio_write { paddr; value } ->
      (match Disk_ctl.write t.ctl ~paddr ~value with
      | Disk_ctl.Plain -> ()
      | Disk_ctl.Doorbell db -> submit_io t db);
      Cpu.advance_pc t.cpu;
      ignore (Cpu.tick_recovery t.cpu);
      schedule_step t t.p.Params.instr_time
    | Cpu.Tlb_miss { vaddr; write = _ } ->
      Cpu.deliver_trap t.cpu ~badvaddr:vaddr ~cause:Isa.Cause.tlb_miss
        ~epc:(Cpu.pc t.cpu);
      schedule_step t t.p.Params.bare_trap_latency
    | Cpu.Protection { vaddr; write = _ } ->
      Cpu.deliver_trap t.cpu ~badvaddr:vaddr ~cause:Isa.Cause.protection
        ~epc:(Cpu.pc t.cpu);
      schedule_step t t.p.Params.bare_trap_latency
    | Cpu.Syscall _code ->
      Cpu.deliver_trap t.cpu ~cause:Isa.Cause.syscall ~epc:(Cpu.pc t.cpu + 1);
      schedule_step t t.p.Params.bare_trap_latency
    | Cpu.Fault msg -> failwith ("Bare: guest fault: " ^ msg)
    | Cpu.Cert_violation { addr; msg } ->
      failwith
        (Printf.sprintf "Bare: certificate violation at %d: %s" addr msg)

type outcome = {
  time : Time.t;
  instructions : int;
  results : Guest_results.t;
  console : string;
  disk_log : Disk.Log.entry list;
}

let run ?(limit = 200_000_000) t =
  Guest_results.write_config t.cpu t.workload.Hft_guest.Workload.config;
  schedule_step t Time.zero;
  Engine.run ~limit t.engine;
  if not t.halted then failwith "Bare.run: guest did not halt";
  {
    time = t.halt_time;
    instructions = Cpu.instructions_retired t.cpu;
    results = Guest_results.read t.cpu;
    console = Console.contents t.console;
    disk_log = Disk.Log.entries t.disk;
  }
