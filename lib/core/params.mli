(** Configuration and cost model for the replicated system.

    Every timing constant is taken from, or calibrated against, the
    measurements in section 4 of the paper:

    - instructions execute in 0.02 us (the HP 9000/720 is a 50 MIPS
      processor);
    - simulating a privileged/environment instruction costs 15.12 us
      (8 us hypervisor entry/exit + 7.12 us of work);
    - epoch-boundary processing under the original protocol averages
      443.59 us, decomposed here into local processing, two message
      set-ups (the [Tme] and [end,E] sends) and — in the original
      protocol only — the acknowledgement round trip;
    - the hypervisor-to-hypervisor link is a 10 Mbps Ethernet by
      default (155 Mbps ATM reproduces figure 4). *)

type protocol =
  | Original
      (** rule P2 as first stated: the primary awaits acknowledgements
          for all messages at every epoch boundary *)
  | Revised
      (** section 4.3: the boundary ack wait is dropped; instead the
          primary may not issue an I/O operation until all messages it
          has sent have been acknowledged *)

type tlb_mode =
  | Hypervisor_managed
      (** the section 3.2 fix: the hypervisor services TLB misses for
          resident pages, so TLB state is invisible to the guest *)
  | Guest_managed
      (** misses are reflected to the guest kernel, faithful to the
          raw PA-RISC — combined with a nondeterministic replacement
          policy this breaks replica determinism, as the paper found *)

type epoch_mechanism =
  | Recovery_register
      (** the PA-RISC mechanism the prototype used: an interrupt after
          exactly [epoch_length] completed instructions *)
  | Code_rewriting
      (** section 2.1's alternative: the object code is edited so the
          hypervisor is invoked periodically ({!Hft_machine.Rewrite});
          epochs become variable-length, bounded by [epoch_length] *)

type hash_scheme =
  | Incremental
      (** lockstep state hashes re-hash only memory pages written
          since the previous epoch boundary ({!Hft_machine.Memory.digest}) *)
  | Full_rehash
      (** every boundary re-hashes all of memory from scratch — the
          pre-dirty-tracking behaviour, kept as the reference and
          benchmark baseline.  Both schemes produce identical hash
          values, so replicas may differ in this setting. *)

type exec_backend =
  | Interp
      (** the decode-per-step interpreter — the reference semantics *)
  | Threaded
      (** manifest-certified superblocks execute as direct-threaded
          closure chains ({!Hft_machine.Translate}); everything else —
          and every trap, exit, or stale manifest — falls back to the
          interpreter *)
  | Differential
      (** both at once, as the paper's own lockstep makes possible:
          the primary runs [Threaded], the backup runs [Interp], and
          the first state-digest divergence at an epoch boundary
          faults the run immediately — the interpreter is the oracle
          for the translator *)

type t = {
  epoch_length : int;        (** instructions per epoch (the recovery
                                 register load, or the marker spacing
                                 under code rewriting) *)
  protocol : protocol;
  tlb_mode : tlb_mode;
  epoch_mechanism : epoch_mechanism;
  instr_time : Hft_sim.Time.t;
  hv_entry_exit : Hft_sim.Time.t;
  hv_work : Hft_sim.Time.t;
  hv_epoch_local : Hft_sim.Time.t;
      (** epoch-boundary bookkeeping excluding sends and ack wait *)
  hv_send_setup : Hft_sim.Time.t;
      (** CPU cost of initiating one hypervisor-to-hypervisor message *)
  hv_intr_deliver : Hft_sim.Time.t;
      (** cost of delivering one buffered interrupt to the VM *)
  hv_intr_receive : Hft_sim.Time.t;
      (** cost of fielding a device interrupt and relaying it *)
  hv_tlb_fill : Hft_sim.Time.t;
      (** hypervisor-managed TLB fill (invisible to the guest) *)
  bare_trap_latency : Hft_sim.Time.t;
      (** hardware trap reflection on the bare machine *)
  link : Hft_net.Link.t;
  retransmit : bool;
      (** harden the protocol against a fair-lossy channel: unacked
          reliable messages are resent on a timeout; off reproduces
          the paper's reliable-channel assumption taken on faith *)
  ack_wait : bool;
      (** honour the protocol's acknowledgement gate (rule P2's
          boundary wait under [Original], the I/O gate under
          [Revised]).  Turning it off deliberately breaks the
          protocol; it exists so the model checker can demonstrate a
          found counterexample, like PR 1's [--no-retransmit] *)
  rtx_timeout : Hft_sim.Time.t;
      (** base retransmission timeout; each fire also waits out the
          link backlog and doubles the base (capped at 4x) *)
  rtx_give_up : int;
      (** consecutive unanswered retransmission rounds after which the
          peer is presumed dead *)
  detector_timeout : Hft_sim.Time.t;
  backup_clock_skew : Hft_sim.Time.t;
      (** time-of-day skew of the backup processor's clock — the
          reason clock reads must be forwarded, not read locally *)
  hv_recovery : bool;
      (** attempt a ReHype-style in-place microreboot when the
          hypervisor itself fails, instead of treating every
          hypervisor fault as fail-stop (the paper's assumption) *)
  hv_reboot_time : Hft_sim.Time.t;
      (** wall time of one microreboot: reinitialising hypervisor
          code/data while guest memory and CPU state stay in place *)
  hv_panic_latency : Hft_sim.Time.t;
      (** delay between a hypervisor crash and its panic handler
          triggering the reboot (detection is immediate: the fault
          raises a trap, unlike a hang) *)
  watchdog_interval : Hft_sim.Time.t;
      (** period of the out-of-band hardware watchdog that detects a
          hung hypervisor by observing a frozen heartbeat counter *)
  hv_recovery_max : int;
      (** microreboots tolerated per node; one more escalates to
          fail-stop and lets the peer's failover path take over *)
  disk : Hft_devices.Disk.params;
  cpu_config : Hft_machine.Cpu.config;
  hash_scheme : hash_scheme;
  validate_manifest : bool;
      (** analyze the guest image at boot and arm the interpreter's
          runtime certificate validator
          ({!Hft_machine.Cpu.install_validator}) with the resulting
          compilation manifest, so every run differentially tests the
          static certificates against actual execution.  On by
          default; benchmarks turn it off for clean timings. *)
  exec_backend : exec_backend;
      (** how guest instructions execute between stops; [Interp] by
          default.  [Threaded]/[Differential] additionally compile the
          manifest's certified superblocks into the CPU's translation
          cache at boot ({!Hft_analysis.Manifest.install_translation});
          a stale manifest logs and degrades to full interpretation. *)
  profile_guest : bool;
      (** arm exact guest hot-spot profiling on every virtual machine
          at boot ({!Hft_machine.Cpu.install_profile}): per-address
          retirement counters maintained identically by both backends.
          Off by default.  Profiling must never perturb execution —
          {!Hft_core.System.fingerprint} is pinned identical with it
          on and off. *)
}

val default : t
(** Paper calibration: 4 K-instruction epochs, original protocol,
    hypervisor-managed TLB, Ethernet link. *)

val hsim : t -> Hft_sim.Time.t
(** [hv_entry_exit + hv_work] = 15.12 us with defaults. *)

val with_epoch_length : t -> int -> t
val with_protocol : t -> protocol -> t
val with_link : t -> Hft_net.Link.t -> t
val with_retransmit : t -> bool -> t
val with_ack_wait : t -> bool -> t
val with_hash_scheme : t -> hash_scheme -> t
val with_validate_manifest : t -> bool -> t
val with_exec_backend : t -> exec_backend -> t
val with_profile_guest : t -> bool -> t

val backend_name : exec_backend -> string
val backend_of_name : string -> exec_backend option

val pp_protocol : Format.formatter -> protocol -> unit
val pp_backend : Format.formatter -> exec_backend -> unit
val pp : Format.formatter -> t -> unit
