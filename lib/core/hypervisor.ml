open Hft_sim
open Hft_machine
open Hft_devices
module Channel = Hft_net.Channel
module Layout = Hft_guest.Layout
module Ev = Hft_obs.Event

let max_burst = 2_000_000

type role = Primary | Backup | Promoted

type io_req = { cmd : int; block : int; dma : int }

type buffered_intr =
  | Bi_disk of Message.relayed_completion
  | Bi_timer

(* arrival-stamped buffer entry, for the delay(EL) measurement.
   [obs_id] pairs the buffered and delivered observability events; it
   is excluded from fingerprints, like the stamp itself. *)
type stamped = { bi : buffered_intr; since : Time.t; obs_id : int }

(* What the actor is waiting for.  While blocked the VM makes no
   progress; message arrivals (or the failure detector) resume it. *)
type blocked =
  | Not_blocked
  | B_acks of { upto : int; resume : ack_resume }
  | B_tme
  | B_end
  | B_env
  | B_snapshot

and ack_resume = R_boundary | R_io of io_req

(* A reliable message awaiting acknowledgement.  [r_up] routes the
   retransmission on the ack-direction channel (only the reintegration
   handshake's [Snapshot_done] travels that way); in every supported
   configuration a node's reliable traffic flows towards a single
   peer, so one stream of [dseq] numbers suffices. *)
type rtx_entry = {
  r_dseq : int;
  r_body : Message.body;
  r_snapshot_bytes : int option;
  r_bytes : int;
  r_up : bool;
}

type snapshot = {
  s_cpu : Cpu.snapshot;
  s_vcrs : int array;
  s_ctl : Disk_ctl.t;
  s_outstanding : io_req list;
  s_pending : stamped list;
  s_vtimer : int;
  s_vtod : int;
  s_epoch : int;
}

(* ---------- hypervisor-failure model (ReHype extension) ---------- *)

(* The paper assumes the hypervisor itself is correct and fail-stop;
   ReHype (Le & Tamir) shows hypervisor failures are a recoverable
   fault class.  Three kinds are modelled: a crash (the hypervisor
   panics and its panic handler triggers recovery), a hang (only an
   out-of-band hardware watchdog can notice the frozen heartbeat), and
   seeded corruption of hypervisor-internal structures. *)
type corrupt_target = C_epoch | C_acks | C_rtx

type hv_fault = Hv_crash | Hv_hang | Hv_corrupt of corrupt_target

type hv_health = Healthy | Faulted of hv_fault | Recovering

let hv_fault_kind = function
  | Hv_crash -> "crash"
  | Hv_hang -> "hang"
  | Hv_corrupt C_epoch -> "corrupt-epoch"
  | Hv_corrupt C_acks -> "corrupt-acks"
  | Hv_corrupt C_rtx -> "corrupt-rtx"

(* The microreboot's state partition.  Guest memory, CPU state and the
   device-facing structures survive a reboot in place (they live in
   preserved domain memory); timers and receive-side reassembly are
   volatile and reconciled afresh; and the small set of protocol
   counters a corruption can damage — epoch counters, ack bookkeeping,
   the retransmission queue — is mirrored into this recovery block,
   committed at the end of every event-handling quantum and restored
   wholesale by the reboot. *)
type recovery_block = {
  mutable rb_epoch : int;
  mutable rb_relay_epoch : int;
  mutable rb_env_idx : int;
  mutable rb_send_seq : int;
  mutable rb_data_sent : int;
  mutable rb_acked : int;
  mutable rb_data_recvd : int;
  mutable rb_rtx : rtx_entry list;
}

type t = {
  name_ : string;
  engine : Engine.t;
  p : Params.t;
  vm : Cpu.t;
  clock : Clock.t;
  disk : Disk.t;
  console : Console.t;
  port : int;
  workload : Hft_guest.Workload.t;
  ctl : Disk_ctl.t;
  st : Stats.t;
  obs : Hft_obs.Recorder.t;
  mutable next_intr_id : int;
  vcrs : int array;
  mutable role_ : role;
  mutable alive_ : bool;
  mutable peer_alive : bool;
  mutable tx_data : Message.t Channel.t option;
      (* downstream: protocol data (primary), forwarded stream (chained
         backup) *)
  mutable tx_ack : Message.t Channel.t option;
      (* upstream: acknowledgements and the reintegration handshake *)
  mutable peer : t option;
  mutable failover_notice : int option;
      (* chain: upstream backup promoted at this epoch; perform the
         same failover delivery without promoting *)
  mutable epoch_ : int;
  mutable relay_epoch : int;
  mutable env_idx : int;
  mutable debt : Time.t;
  mutable blocked : blocked;
  mutable detector : Engine.handle option;
  (* messaging *)
  mutable send_seq : int;   (* wire-level sequence, all messages *)
  mutable data_sent : int;  (* data messages only: what acks cover *)
  mutable acked : int;
  mutable data_recvd : int;
      (* next expected [dseq] from the peer = count of reliable
         messages delivered in order *)
  rcv_hold : (int, Message.body) Hashtbl.t;
      (* reliable messages that arrived ahead of a gap, held until the
         gap fills (restores sender order over a fair-lossy link) *)
  rtx_queue : rtx_entry Queue.t; (* sent but not yet acknowledged *)
  mutable rtx_timer : Engine.handle option;
  mutable rtx_backoff : int; (* consecutive unanswered fires *)
  mutable ack_wait_start : Time.t;
  mutable boundary_tod : int;
      (* the time-of-day value sent in this boundary's [Tme]; the timer
         check must use exactly this value or the replicas could
         disagree about a timer expiry *)
  (* interrupt buffering *)
  mutable buffered_current : stamped list; (* primary, reversed *)
  buffered_by_epoch : (int, stamped list ref) Hashtbl.t; (* backup *)
  env_vals : (int * int, Word.t) Hashtbl.t;
  tmes : (int, Word.t * int) Hashtbl.t;
  ends : (int, unit) Hashtbl.t;
  mutable pending_delivery : stamped list;
  outstanding : io_req Queue.t;
  (* virtual clocks *)
  mutable vtimer_deadline_us : int; (* -1 = unarmed; in virtual-TOD us *)
  mutable vtod_us : int;            (* backup: last synchronised TOD *)
  mutable vtod_offset_us : int;     (* promoted: own-clock correction *)
  (* lifecycle *)
  mutable halted_ : bool;
  mutable halt_time_ : Time.t;
  mutable reintegrate_requested : bool;
  mutable snapshot_box : snapshot option;
  (* hypervisor-failure recovery (ReHype extension) *)
  mutable health : hv_health;
  mutable heartbeat : int;
      (* bumped once per serviced event; a hung hypervisor freezes it,
         which is what the out-of-band watchdog observes *)
  mutable missed : (string * (unit -> unit)) list;
      (* work continuations that fired while the hypervisor was down,
         latched (newest first) for FIFO replay after the reboot *)
  mutable dropped_while_down : int;
      (* channel messages a down hypervisor failed to service; healed
         post-reboot by resync/retransmission *)
  mutable fault_since : Time.t; (* injection time of the current fault *)
  rb : recovery_block;
  (* hooks *)
  mutable on_epoch_boundary : epoch:int -> hash:int -> unit;
  mutable on_halt : t -> unit;
  mutable on_promote : t -> unit;
}

let name t = t.name_
let role t = t.role_
let alive t = t.alive_
let halted t = t.halted_
let halt_time t = t.halt_time_
let epoch t = t.epoch_
let cpu t = t.vm
let stats t = t.st

let results t = Guest_results.read t.vm

(* Typed observability: a free sink unless a recorder was threaded in
   through [create].  The [enabled] guard keeps event payloads from
   being allocated on benchmark runs. *)
let emit t ev =
  if Hft_obs.Recorder.enabled t.obs then
    Hft_obs.Recorder.emit t.obs ~time:(Engine.now t.engine) ~source:t.name_ ev

(* Stamp a buffered interrupt with its arrival time and a fresh
   pairing id, and record the buffering event. *)
let stamp t bi ~epoch =
  let id = t.next_intr_id in
  t.next_intr_id <- id + 1;
  emit t
    (Ev.Intr_buffered
       {
         id;
         kind = (match bi with Bi_disk _ -> "disk" | Bi_timer -> "timer");
         epoch;
       });
  { bi; since = Engine.now t.engine; obs_id = id }

let fnv_prime = 0x100000001b3
let fnv_mask = (1 lsl 62) - 1

let vm_state_hash t =
  let full = t.p.Params.hash_scheme = Params.Full_rehash in
  let h = ref (Cpu.state_hash ~include_tlb:false ~full t.vm) in
  Array.iter (fun v -> h := (!h lxor v) * fnv_prime land fnv_mask) t.vcrs;
  !h

(* Analyze the guest image and arm the interpreter's runtime
   certificate validator with the resulting manifest, so every run
   differentially tests the static certificates against execution.
   [deprivileged] maps Priv0 through section 3.1's deprivileging. *)
let arm_manifest_validator ~params ~workload ~deprivileged cpu =
  if params.Params.validate_manifest then begin
    let program = workload.Hft_guest.Workload.program in
    let m =
      Hft_analysis.Manifest.of_code_cached
        ~rewritten:(params.Params.epoch_mechanism = Params.Code_rewriting)
        ~random_tlb:
          (match params.Params.cpu_config.Cpu.tlb_policy with
          | Tlb.Random _ -> true
          | Tlb.Round_robin -> false)
        ~mmio_base:params.Params.cpu_config.Cpu.mmio_base
        ~code_refs:program.Asm.code_refs program.Asm.code
    in
    Hft_analysis.Manifest.install m ~deprivileged cpu
  end

(* Under the [Threaded] (or [Differential], which maps to [Threaded]
   on one replica) backend, additionally compile the manifest's
   certified superblocks into the CPU's direct-threaded translation
   cache.  A stale manifest is not fatal here — the CPU simply stays
   on the full-interpreter path, which is the semantic oracle. *)
let arm_translation ~params ~workload ~deprivileged cpu =
  match params.Params.exec_backend with
  | Params.Interp -> ()
  | Params.Threaded | Params.Differential ->
    let program = workload.Hft_guest.Workload.program in
    let m =
      Hft_analysis.Manifest.of_code_cached
        ~rewritten:(params.Params.epoch_mechanism = Params.Code_rewriting)
        ~random_tlb:
          (match params.Params.cpu_config.Cpu.tlb_policy with
          | Tlb.Random _ -> true
          | Tlb.Round_robin -> false)
        ~mmio_base:params.Params.cpu_config.Cpu.mmio_base
        ~code_refs:program.Asm.code_refs program.Asm.code
    in
    (match Hft_analysis.Manifest.install_translation m ~deprivileged cpu with
    | Ok _ -> ()
    | Error _ -> () (* stale manifest: full interpreter fallback *))

let create ~name ~role ~port ~engine ~params ~workload ~disk ~console ~clock
    ?(obs = Hft_obs.Recorder.null) () =
  let vm =
    Cpu.create ~config:params.Params.cpu_config
      ~code:workload.Hft_guest.Workload.program.Asm.code ()
  in
  arm_manifest_validator ~params ~workload ~deprivileged:true vm;
  if params.Params.profile_guest then Cpu.install_profile vm;
  arm_translation ~params ~workload ~deprivileged:true vm;
  {
    name_ = name;
    engine;
    p = params;
    vm;
    clock;
    disk;
    console;
    port;
    workload;
    ctl = Disk_ctl.create ();
    st = Stats.create ();
    obs;
    next_intr_id = 0;
    vcrs = Array.make Isa.num_crs 0;
    role_ = role;
    alive_ = true;
    peer_alive = true;
    tx_data = None;
    tx_ack = None;
    peer = None;
    failover_notice = None;
    epoch_ = 0;
    relay_epoch = 0;
    env_idx = 0;
    debt = Time.zero;
    blocked = Not_blocked;
    detector = None;
    send_seq = 0;
    data_sent = 0;
    acked = 0;
    data_recvd = 0;
    rcv_hold = Hashtbl.create 16;
    rtx_queue = Queue.create ();
    rtx_timer = None;
    rtx_backoff = 0;
    ack_wait_start = Time.zero;
    boundary_tod = 0;
    buffered_current = [];
    buffered_by_epoch = Hashtbl.create 64;
    env_vals = Hashtbl.create 64;
    tmes = Hashtbl.create 64;
    ends = Hashtbl.create 64;
    pending_delivery = [];
    outstanding = Queue.create ();
    vtimer_deadline_us = -1;
    vtod_us = 0;
    vtod_offset_us = 0;
    halted_ = false;
    halt_time_ = Time.zero;
    reintegrate_requested = false;
    snapshot_box = None;
    health = Healthy;
    heartbeat = 0;
    missed = [];
    dropped_while_down = 0;
    fault_since = Time.zero;
    rb =
      {
        rb_epoch = 0;
        rb_relay_epoch = 0;
        rb_env_idx = 0;
        rb_send_seq = 0;
        rb_data_sent = 0;
        rb_acked = 0;
        rb_data_recvd = 0;
        rb_rtx = [];
      };
    on_epoch_boundary = (fun ~epoch:_ ~hash:_ -> ());
    on_halt = (fun _ -> ());
    on_promote = (fun _ -> ());
  }

let connect ?tx_data ?tx_ack t ~peer =
  t.tx_data <- tx_data;
  t.tx_ack <- tx_ack;
  t.peer <- Some peer

let set_on_epoch_boundary t f = t.on_epoch_boundary <- f
let get_on_epoch_boundary t = t.on_epoch_boundary
let set_on_halt t f = t.on_halt <- f
let set_on_promote t f = t.on_promote <- f

(* ---------- virtual clocks ---------- *)

(* The primary (and a promoted backup) reads its own time-of-day
   device; a backup only ever sees forwarded values, so [vtod] is the
   last [Tme] synchronisation. *)
let read_vtod t =
  match t.role_ with
  | Primary -> Clock.read_us t.clock
  | Promoted -> Word.mask (Clock.read_us t.clock + t.vtod_offset_us)
  | Backup -> t.vtod_us

(* ---------- messaging ---------- *)

let hsim t = Params.hsim t.p

(* Channel-direction fallback: after a failover the channel pair must
   serve both directions — the promoted backup has no dedicated
   downstream channel, so its data stream (and the reintegration
   offer) flows on the erstwhile ack channel, and the revived
   backup's acknowledgements flow on the erstwhile data channel. *)
let out_channel t =
  match t.tx_data with Some _ as ch -> ch | None -> t.tx_ack

let ack_channel t =
  match t.tx_ack with Some _ as ch -> ch | None -> t.tx_data

let transmit t ch ?snapshot_bytes ~dseq body =
  let msg = Message.make ~seq:t.send_seq ~dseq body in
  t.send_seq <- t.send_seq + 1;
  Channel.send ch ~bytes:(Message.bytes ?snapshot_bytes msg) msg

(* Unreliable send: acknowledgements only.  Nothing acks an ack, so
   they are never queued for retransmission — a lost ack is repaired
   by the cumulative ack of the next delivery (or the duplicate the
   peer's retransmission provokes). *)
let send_up t body =
  match ack_channel t with
  | None -> ()
  | Some ch -> transmit t ch ~dseq:(-1) body

let send_ack t = send_up t (Message.Ack { upto = t.data_recvd })

(* ---------- failure detector ---------- *)

let cancel_detector t =
  match t.detector with
  | Some h ->
    Engine.cancel t.engine h;
    t.detector <- None
  | None -> ()

let rec arm_detector ?timeout t =
  cancel_detector t;
  let timeout =
    match timeout with Some d -> d | None -> t.p.Params.detector_timeout
  in
  if t.peer_alive then
    t.detector <-
      Some
        (Engine.after t.engine ~label:"detector" ~actor:t.name_ timeout
           (fun () ->
             t.detector <- None;
             guarded t ~label:"detector" `Timer (fun () -> detector_fired t) ()))

(* ---------- retransmission (fair-lossy hardening) ---------- *)

and cancel_rtx t =
  match t.rtx_timer with
  | Some h ->
    Engine.cancel t.engine h;
    t.rtx_timer <- None
  | None -> ()

and clear_rtx t =
  cancel_rtx t;
  Queue.clear t.rtx_queue;
  t.rtx_backoff <- 0

(* Timeout before resending the oldest unacknowledged message: the
   exponential backoff plus a round trip for that message plus
   whatever is already serializing on the outgoing link — without the
   backlog term a busy link (a burst of relayed read completions can
   queue for milliseconds) would trigger spurious retransmissions. *)
and rtx_delay t =
  let e = Queue.peek t.rtx_queue in
  let base = Time.scale t.p.Params.rtx_timeout (1 lsl min t.rtx_backoff 2) in
  let transfer = Hft_net.Link.transfer_time t.p.Params.link ~bytes:e.r_bytes in
  let backlog =
    match (if e.r_up then ack_channel t else out_channel t) with
    | Some ch ->
      let b = Channel.busy_until ch in
      let now = Engine.now t.engine in
      if Time.(b > now) then Time.diff b now else Time.zero
    | None -> Time.zero
  in
  Time.add base (Time.add (Time.scale transfer 2) backlog)

and arm_rtx t =
  if
    t.p.Params.retransmit && t.alive_ && t.rtx_timer = None
    && not (Queue.is_empty t.rtx_queue)
  then
    t.rtx_timer <-
      Some
        (Engine.after t.engine ~label:"rtx" ~actor:t.name_ (rtx_delay t)
           (fun () ->
             t.rtx_timer <- None;
             guarded t ~label:"rtx" `Timer (fun () -> rtx_fire t) ()))

(* Go-back-N: resend everything unacknowledged.  A halted node keeps
   retransmitting its tail (the peer still needs the final epoch's
   messages); only an ack covering the queue — or the give-up bound —
   lets the simulation drain. *)
and rtx_fire t =
  if t.alive_ && not (Queue.is_empty t.rtx_queue) then begin
    if not t.peer_alive then clear_rtx t
    else if t.rtx_backoff >= t.p.Params.rtx_give_up then begin
      emit t (Ev.Rtx_give_up { rounds = t.rtx_backoff });
      clear_rtx t;
      if t.halted_ then t.peer_alive <- false
      else begin
        cancel_detector t;
        detector_fired t
      end
    end
    else begin
      t.rtx_backoff <- t.rtx_backoff + 1;
      let n = Queue.length t.rtx_queue in
      Queue.iter
        (fun e ->
          match (if e.r_up then ack_channel t else out_channel t) with
          | None -> ()
          | Some ch ->
            transmit t ch ?snapshot_bytes:e.r_snapshot_bytes ~dseq:e.r_dseq
              e.r_body)
        t.rtx_queue;
      t.st.Stats.retransmits <- t.st.Stats.retransmits + n;
      emit t (Ev.Rtx_round { round = t.rtx_backoff; count = n });
      arm_rtx t
    end
  end

(* Reliable send: the message joins the outgoing acknowledged stream
   at position [data_sent] and stays queued until the peer's
   cumulative ack covers it.  [up] routes on the ack-direction channel
   (only the reintegration handshake's [Snapshot_done] travels that
   way). *)
and send_msg ?snapshot_bytes ?(up = false) t body =
  match (if up then ack_channel t else out_channel t) with
  | None -> ()
  | Some ch ->
    let dseq = t.data_sent in
    t.data_sent <- t.data_sent + 1;
    let bytes = Message.bytes ?snapshot_bytes (Message.make ~seq:0 ~dseq body) in
    emit t (Ev.Msg_send { dseq; kind = Message.body_kind body; bytes });
    Queue.add
      {
        r_dseq = dseq;
        r_body = body;
        r_snapshot_bytes = snapshot_bytes;
        r_bytes = bytes;
        r_up = up;
      }
      t.rtx_queue;
    transmit t ch ?snapshot_bytes ~dseq body;
    arm_rtx t

(* ---------- virtual trap delivery ---------- *)

(* Mirror the virtual status register onto the real one: virtual
   privilege 0 runs at real privilege 1 (section 3.1), the MMU bit is
   the guest's, and the recovery counter counts whenever it is the
   epoch mechanism (under code rewriting it stays off — the markers in
   the instruction stream end epochs instead). *)
and apply_vstatus t =
  let v = t.vcrs.(Isa.cr_index Isa.Cr_status) in
  let vpriv = Isa.status_priv v in
  let rpriv = if vpriv = 0 then 1 else vpriv in
  let real = Cpu.cr t.vm Isa.Cr_status in
  let real = Isa.status_with_priv real rpriv in
  let real = Isa.status_with_mmu_enable real (Isa.status_mmu_enable v) in
  let real =
    Isa.status_with_rc_enable real
      (t.p.Params.epoch_mechanism = Params.Recovery_register)
  in
  Cpu.set_cr t.vm Isa.Cr_status real

and vint_enabled t = Isa.status_int_enable t.vcrs.(Isa.cr_index Isa.Cr_status)

and set_vcr t cr v = t.vcrs.(Isa.cr_index cr) <- Word.mask v

and vcr t cr = t.vcrs.(Isa.cr_index cr)

(* Virtual equivalent of hardware trap delivery (Cpu.deliver_trap),
   performed against the shadow control registers. *)
and deliver_virtual_trap t ~cause ~badvaddr ~epc =
  let s = vcr t Isa.Cr_status in
  set_vcr t Isa.Cr_istatus s;
  set_vcr t Isa.Cr_epc epc;
  set_vcr t Isa.Cr_cause cause;
  set_vcr t Isa.Cr_badvaddr badvaddr;
  let s = Isa.status_with_priv s 0 in
  let s = Isa.status_with_int_enable s false in
  let s = Isa.status_with_mmu_enable s false in
  set_vcr t Isa.Cr_status s;
  apply_vstatus t;
  (* virtual trap delivery enters a trap root without the real trap
     path, so reset the certificate validator's written set by hand *)
  Cpu.validator_amnesty t.vm;
  Cpu.set_pc t.vm (vcr t Isa.Cr_ivec)

(* Deliver one buffered interrupt into the VM. *)
and deliver_one_interrupt t { bi; since; obs_id } =
  Stats.add_time t.st `Intr_delay (Time.diff (Engine.now t.engine) since);
  emit t
    (Ev.Intr_delivered
       {
         id = obs_id;
         kind = (match bi with Bi_disk _ -> "disk" | Bi_timer -> "timer");
       });
  (match bi with
  | Bi_disk rc ->
    (match rc.Message.dma with
    | Some (addr, data) -> Memory.blit_in (Cpu.mem t.vm) ~addr data
    | None -> ());
    Disk_ctl.set_status t.ctl rc.Message.status;
    (match Queue.take_opt t.outstanding with
    | Some _ -> ()
    | None ->
      t.st.Stats.spurious_completions <- t.st.Stats.spurious_completions + 1;
      emit t (Ev.Note "disk completion with no outstanding op"));
    set_vcr t Isa.Cr_scratch0 Layout.intr_kind_disk
  | Bi_timer -> set_vcr t Isa.Cr_scratch0 Layout.intr_kind_timer);
  t.st.Stats.interrupts_delivered <- t.st.Stats.interrupts_delivered + 1;
  deliver_virtual_trap t ~cause:Isa.Cause.interrupt ~badvaddr:0
    ~epc:(Cpu.pc t.vm)

and deliver_pending_if_possible t =
  match t.pending_delivery with
  | [] -> ()
  | bi :: rest ->
    if vint_enabled t then begin
      t.pending_delivery <- rest;
      deliver_one_interrupt t bi
    end

(* Re-arm the epoch mechanism for the next epoch.  Under code
   rewriting there is nothing to arm: markers in the instruction
   stream end epochs. *)
and arm_epoch t =
  match t.p.Params.epoch_mechanism with
  | Params.Recovery_register -> Cpu.set_recovery t.vm t.p.Params.epoch_length
  | Params.Code_rewriting -> ()

(* ---------- main execution loop ---------- *)

and resume_after t d =
  ignore
    (Engine.after t.engine ~label:"resume" ~actor:t.name_ d
       (guarded t ~label:"resume" `Work (fun () -> continue_vm t)))

and continue_vm t =
  if t.alive_ && not t.halted_ then begin
    if Time.(t.debt > Time.zero) then begin
      (* pay for work done at interrupt level during the last burst *)
      let d = t.debt in
      t.debt <- Time.zero;
      resume_after t d
    end
    else
      match t.blocked with
      | Not_blocked ->
        let fuel =
          match Engine.next_time t.engine with
          | Some next ->
            let gap = Time.to_ns (Time.diff next (Engine.now t.engine)) in
            let n = gap / Time.to_ns t.p.Params.instr_time in
            max 1 (min n max_burst)
          | None -> max_burst
        in
        let res = Cpu.run t.vm ~fuel in
        t.st.Stats.instructions <-
          t.st.Stats.instructions + res.Cpu.executed;
        (* the coverage counters are cumulative over the CPU's
           lifetime, so overwrite rather than accumulate *)
        (match Cpu.validator_coverage t.vm with
        | Some (covered, checked) ->
          t.st.Stats.certified_instructions <- covered;
          t.st.Stats.validated_instructions <- checked
        | None -> ());
        (match Cpu.translation t.vm with
        | Some tx ->
          t.st.Stats.blocks_translated <- tx.Translate.translated_blocks;
          t.st.Stats.superinstructions_fused <- tx.Translate.fused;
          t.st.Stats.threaded_instrs <- tx.Translate.threaded_instrs;
          t.st.Stats.threaded_entries <- tx.Translate.entries_taken;
          t.st.Stats.loops_hoisted <- tx.Translate.hoisted_loops;
          t.st.Stats.hoisted_decrements <-
            tx.Translate.state.Translate.x_hoist_saved;
          t.st.Stats.fallback_budget <- tx.Translate.fb_budget;
          t.st.Stats.fallback_priv <- tx.Translate.fb_priv;
          t.st.Stats.fallback_link <- tx.Translate.fb_link;
          t.st.Stats.fallback_indirect <- tx.Translate.fb_indirect;
          t.st.Stats.fallback_bail <- tx.Translate.fb_bail;
          t.st.Stats.fallback_stop <- tx.Translate.fb_stop
        | None -> ());
        let dt = Time.scale t.p.Params.instr_time res.Cpu.executed in
        ignore
          (Engine.after t.engine ~label:"stop" ~actor:t.name_ dt
             (guarded t ~label:"stop" `Work (fun () ->
                  handle_stop t res.Cpu.stop)))
      | _ -> () (* a resume path will reschedule us *)
  end

and handle_stop t stop =
  if t.alive_ && not t.halted_ then
    match stop with
    | Cpu.Fuel -> continue_vm t
    | Cpu.Recovery -> epoch_boundary t
    | Cpu.Stop_wfi -> (
      match t.p.Params.epoch_mechanism with
      | Params.Recovery_register ->
        (* The guest idles: account the rest of the epoch as idle time
           and take the boundary there, preserving the instruction
           stream (both replicas reach the Wfi at the same point). *)
        let rem = Cpu.recovery_remaining t.vm in
        if rem = 0 then epoch_boundary t
        else begin
          let d = Time.scale t.p.Params.instr_time rem in
          Stats.add_time t.st `Idle d;
          t.st.Stats.instructions <- t.st.Stats.instructions + rem;
          ignore
            (Engine.after t.engine ~label:"idle-epoch" ~actor:t.name_ d
               (guarded t ~label:"idle-epoch" `Work (fun () ->
                    epoch_boundary t)))
        end
      | Params.Code_rewriting ->
        (* no counted epoch to idle towards: the wait loop simply
           spins until its back-edge marker ends the epoch *)
        continue_vm t)
    | Cpu.Stop_halt ->
      t.halted_ <- true;
      t.halt_time_ <- Engine.now t.engine;
      cancel_detector t;
      emit t (Ev.Halt { epoch = t.epoch_ });
      t.on_halt t
    | Cpu.Env i -> sim_env t i
    | Cpu.Priv i -> sim_priv t i
    | Cpu.Mmio_read { paddr; reg } -> sim_mmio_read t ~paddr ~reg
    | Cpu.Mmio_write { paddr; value } -> sim_mmio_write t ~paddr ~value
    | Cpu.Tlb_miss { vaddr; write = _ } -> handle_tlb_miss t ~vaddr
    | Cpu.Protection { vaddr; write = _ } ->
      reflect_trap t ~cause:Isa.Cause.protection ~badvaddr:vaddr
        ~epc:(Cpu.pc t.vm)
    | Cpu.Syscall code
      when code = Rewrite.epoch_marker_code
           && t.p.Params.epoch_mechanism = Params.Code_rewriting ->
      (* an epoch marker inserted by object-code editing: this IS the
         hypervisor invocation, not a guest trap; reload the software
         instruction counter for the next epoch *)
      Cpu.advance_pc t.vm;
      Cpu.set_reg t.vm Rewrite.counter_reg t.p.Params.epoch_length;
      epoch_boundary t
    | Cpu.Syscall _ ->
      reflect_trap t ~cause:Isa.Cause.syscall ~badvaddr:0
        ~epc:(Cpu.pc t.vm + 1)
    | Cpu.Fault msg -> failwith (t.name_ ^ ": guest fault: " ^ msg)
    | Cpu.Cert_violation { addr; msg } ->
      failwith
        (Printf.sprintf "%s: certificate violation at %d: %s" t.name_ addr msg)

(* An instruction the hypervisor simulated has completed: advance
   (unless the simulation moved the pc itself), count it against the
   recovery counter, and resume after the simulation cost. *)
and complete_simulated ?(advance = true) ?(extra = Time.zero) t =
  t.st.Stats.simulated <- t.st.Stats.simulated + 1;
  if advance then Cpu.advance_pc t.vm;
  let expired = Cpu.tick_recovery t.vm in
  let d = Time.add (hsim t) extra in
  if expired then
    ignore
      (Engine.after t.engine ~label:"epoch" ~actor:t.name_ d
         (guarded t ~label:"epoch" `Work (fun () -> epoch_boundary t)))
  else resume_after t d

(* ---------- environment instructions ---------- *)

and sim_env t i =
  match t.role_ with
  | Primary | Promoted -> sim_env_primary t i
  | Backup -> sim_env_backup t i

and relay_env_value t v =
  if t.peer_alive then begin
    send_msg t
      (Message.Env_val { epoch = t.relay_epoch; idx = t.env_idx; value = v });
    t.st.Stats.env_values <- t.st.Stats.env_values + 1
  end

and sim_env_primary t i =
  let send_cost = if t.peer_alive then t.p.Params.hv_send_setup else Time.zero in
  match i with
  | Isa.Rdtod rd ->
    let v = read_vtod t in
    Cpu.set_reg t.vm rd v;
    relay_env_value t v;
    t.env_idx <- t.env_idx + 1;
    complete_simulated ~extra:send_cost t
  | Isa.Rdtmr rd ->
    let now = read_vtod t in
    let v =
      if t.vtimer_deadline_us < 0 || t.vtimer_deadline_us <= now then 0
      else t.vtimer_deadline_us - now
    in
    Cpu.set_reg t.vm rd (Word.mask v);
    relay_env_value t (Word.mask v);
    t.env_idx <- t.env_idx + 1;
    complete_simulated ~extra:send_cost t
  | Isa.Wrtmr rs ->
    let v = Cpu.reg t.vm rs in
    let deadline = if v = 0 then -1 else read_vtod t + v in
    t.vtimer_deadline_us <- deadline;
    relay_env_value t (Word.mask (if deadline < 0 then 0 else deadline));
    t.env_idx <- t.env_idx + 1;
    complete_simulated ~extra:send_cost t
  | Isa.Out rs ->
    Console.put t.console (Cpu.reg t.vm rs);
    complete_simulated t
  | _ -> failwith (t.name_ ^ ": unexpected environment instruction")

and sim_env_backup t i =
  match i with
  | Isa.Out rs ->
    (* environment output is suppressed at the backup (case (i) of
       section 2.2); the register state is already identical *)
    ignore rs;
    complete_simulated t
  | Isa.Rdtod _ | Isa.Rdtmr _ | Isa.Wrtmr _ -> (
    let key = (t.epoch_, t.env_idx) in
    match Hashtbl.find_opt t.env_vals key with
    | Some v ->
      Hashtbl.remove t.env_vals key;
      apply_env_value t i v;
      t.env_idx <- t.env_idx + 1;
      complete_simulated t
    | None ->
      if t.peer_alive then begin
        t.blocked <- B_env;
        arm_detector t
      end
      else begin
        (* the primary died before sending this value and therefore
           before revealing anything that depends on it: the backup is
           free to use its own environment (section 4.3 reasoning) *)
        let v =
          match i with
          | Isa.Rdtod _ -> Word.mask (Clock.read_us t.clock + t.vtod_offset_us)
          | Isa.Rdtmr _ ->
            let now = Word.mask (Clock.read_us t.clock + t.vtod_offset_us) in
            if t.vtimer_deadline_us < 0 || t.vtimer_deadline_us <= now then 0
            else Word.mask (t.vtimer_deadline_us - now)
          | Isa.Wrtmr rs ->
            let v = Cpu.reg t.vm rs in
            if v = 0 then 0
            else Word.mask (Clock.read_us t.clock + t.vtod_offset_us + v)
          | _ -> 0
        in
        apply_env_value t i v;
        t.env_idx <- t.env_idx + 1;
        complete_simulated t
      end)
  | _ -> failwith (t.name_ ^ ": unexpected environment instruction")

and apply_env_value t i v =
  match i with
  | Isa.Rdtod rd | Isa.Rdtmr rd -> Cpu.set_reg t.vm rd v
  | Isa.Wrtmr _ -> t.vtimer_deadline_us <- (if v = 0 then -1 else v)
  | _ -> ()

(* ---------- privileged instructions ---------- *)

and sim_priv t i =
  match i with
  | Isa.Mfcr (rd, cr) ->
    Cpu.set_reg t.vm rd (vcr t cr);
    complete_simulated t
  | Isa.Mtcr (cr, rs) ->
    set_vcr t cr (Cpu.reg t.vm rs);
    if cr = Isa.Cr_status then begin
      apply_vstatus t;
      (* re-enabling interrupts releases anything held pending, just
         as the hardware would deliver on the enable edge *)
      Cpu.advance_pc t.vm;
      deliver_pending_if_possible t;
      complete_simulated ~advance:false t
    end
    else complete_simulated t
  | Isa.Tlbw (r1, r2) ->
    let vpage = Cpu.reg t.vm r1 in
    Tlb.insert (Cpu.tlb t.vm) (Tlb.decode_entry_word ~vpage (Cpu.reg t.vm r2));
    complete_simulated t
  | Isa.Rfi ->
    set_vcr t Isa.Cr_status (vcr t Isa.Cr_istatus);
    apply_vstatus t;
    Cpu.set_pc t.vm (vcr t Isa.Cr_epc);
    (* a pending buffered interrupt is delivered as soon as the guest
       returns with interrupts re-enabled *)
    deliver_pending_if_possible t;
    complete_simulated ~advance:false t
  | _ -> failwith (t.name_ ^ ": unexpected privileged instruction")

(* ---------- MMIO ---------- *)

and sim_mmio_read t ~paddr ~reg =
  Cpu.set_reg t.vm reg (Disk_ctl.read t.ctl ~paddr);
  complete_simulated t

and sim_mmio_write t ~paddr ~value =
  match Disk_ctl.write t.ctl ~paddr ~value with
  | Disk_ctl.Plain -> complete_simulated t
  | Disk_ctl.Doorbell db ->
    let req =
      { cmd = db.Disk_ctl.cmd; block = db.Disk_ctl.block; dma = db.Disk_ctl.dma }
    in
    handle_doorbell t req

and handle_doorbell t req =
  match t.role_ with
  | Backup ->
    (* case (i) of section 2.2: suppress, but remember the initiation
       so a failover can synthesize its uncertain completion (P7) *)
    Queue.add req t.outstanding;
    t.st.Stats.io_suppressed <- t.st.Stats.io_suppressed + 1;
    emit t
      (Ev.Io_suppressed
         { block = req.block; write = req.cmd = Layout.cmd_write });
    complete_simulated t
  | Primary | Promoted ->
    if
      t.p.Params.protocol = Params.Revised
      && t.p.Params.ack_wait
      && t.peer_alive
      && t.acked < t.data_sent
    then begin
      (* revised protocol: an I/O operation may not be issued until
         everything sent has been acknowledged *)
      t.blocked <- B_acks { upto = t.data_sent; resume = R_io req };
      t.ack_wait_start <- Engine.now t.engine;
      emit t (Ev.Ack_wait_begin { upto = t.data_sent; at_io = true });
      arm_detector t
    end
    else issue_io t req

and issue_io t req =
  let op =
    if req.cmd = Layout.cmd_write then
      Disk.Write
        {
          block = req.block;
          data =
            Memory.blit_out (Cpu.mem t.vm) ~addr:req.dma
              ~len:(Disk.params t.disk).Disk.block_words;
        }
    else Disk.Read { block = req.block }
  in
  Queue.add req t.outstanding;
  t.st.Stats.io_submitted <- t.st.Stats.io_submitted + 1;
  let dma = req.dma in
  let op_id =
    Disk.submit t.disk ~port:t.port op ~on_complete:(fun c ->
        primary_completion t ~dma c)
  in
  emit t
    (Ev.Io_submit
       { op_id; block = req.block; write = req.cmd = Layout.cmd_write });
  complete_simulated t

(* A device interrupt arrives at the primary's hypervisor: buffer it
   for end-of-epoch delivery and relay a copy to the backup (P1). *)
and primary_completion t ~dma (c : Disk.completion) =
  if t.alive_ then begin
    let rc =
      {
        Message.status =
          (match c.Disk.status with
          | Disk.Ok -> Layout.status_ok
          | Disk.Uncertain -> Layout.status_uncertain);
        dma =
          (match (c.Disk.op, c.Disk.data) with
          | Disk.Read _, Some data -> Some (dma, data)
          | _ -> None);
      }
    in
    t.buffered_current <-
      stamp t (Bi_disk rc) ~epoch:t.relay_epoch :: t.buffered_current;
    t.st.Stats.interrupts_buffered <- t.st.Stats.interrupts_buffered + 1;
    t.debt <- Time.add t.debt t.p.Params.hv_intr_receive;
    if t.peer_alive then begin
      t.debt <- Time.add t.debt t.p.Params.hv_send_setup;
      send_msg t
        (Message.Intr { epoch = t.relay_epoch; completion = rc })
    end;
    (* the send counters just moved: commit them to the recovery block
       (this handler runs from the device interrupt, outside the
       guarded event quantum that normally does so) *)
    (match t.health with Healthy -> persist t | _ -> ())
  end

(* ---------- TLB ---------- *)

and handle_tlb_miss t ~vaddr =
  match t.p.Params.tlb_mode with
  | Params.Hypervisor_managed ->
    (* section 3.2: the hypervisor performs the page-table search and
       insert itself, so the guest never observes TLB state *)
    let vpage = vaddr lsr t.p.Params.cpu_config.Cpu.page_shift in
    let entry_word = Memory.read (Cpu.mem t.vm) (Layout.pt_base + vpage) in
    if entry_word = 0 then
      (* page "not in memory": only then does the guest see the miss *)
      reflect_trap t ~cause:Isa.Cause.tlb_miss ~badvaddr:vaddr
        ~epc:(Cpu.pc t.vm)
    else begin
      Tlb.insert (Cpu.tlb t.vm) (Tlb.decode_entry_word ~vpage entry_word);
      t.st.Stats.tlb_fills <- t.st.Stats.tlb_fills + 1;
      (* invisible to the guest: no pc change, no recovery tick *)
      resume_after t t.p.Params.hv_tlb_fill
    end
  | Params.Guest_managed ->
    reflect_trap t ~cause:Isa.Cause.tlb_miss ~badvaddr:vaddr ~epc:(Cpu.pc t.vm)

and reflect_trap t ~cause ~badvaddr ~epc =
  t.st.Stats.reflected_traps <- t.st.Stats.reflected_traps + 1;
  t.st.Stats.simulated <- t.st.Stats.simulated + 1;
  deliver_virtual_trap t ~cause ~badvaddr ~epc;
  resume_after t (hsim t)

(* ---------- epoch boundaries ---------- *)

and epoch_boundary t =
  let hash = vm_state_hash t in
  let hashed, skipped = Memory.take_hash_work (Cpu.mem t.vm) in
  t.st.Stats.pages_hashed <- t.st.Stats.pages_hashed + hashed;
  t.st.Stats.pages_skipped <- t.st.Stats.pages_skipped + skipped;
  t.on_epoch_boundary ~epoch:t.epoch_ ~hash;
  match t.role_ with
  | Primary | Promoted -> primary_boundary_phase1 t
  | Backup -> backup_boundary t

(* P2, first half: send [Tme], then (original protocol) await
   acknowledgements for everything sent. *)
and primary_boundary_phase1 t =
  let tod = read_vtod t in
  t.boundary_tod <- tod;
  let cost = Time.add t.p.Params.hv_epoch_local t.p.Params.hv_send_setup in
  Stats.add_time t.st `Boundary cost;
  ignore
    (Engine.after t.engine ~label:"boundary-send" ~actor:t.name_ cost
       (guarded t ~label:"boundary-send" `Work (fun () ->
         if t.alive_ then begin
           (* the [Tme] message leaves once the controller set-up is
              paid for; only then can the ack wait begin *)
           if t.peer_alive then
             send_msg t
               (Message.Tme
                  {
                    epoch = t.epoch_;
                    tod_us = tod;
                    timer_deadline_us = t.vtimer_deadline_us;
                  });
           if
             t.p.Params.protocol = Params.Original
             && t.p.Params.ack_wait
             && t.peer_alive
             && t.acked < t.data_sent
           then begin
             t.blocked <- B_acks { upto = t.data_sent; resume = R_boundary };
             t.ack_wait_start <- Engine.now t.engine;
             emit t (Ev.Ack_wait_begin { upto = t.data_sent; at_io = false });
             arm_detector t
           end
           else primary_boundary_phase2 t ~tod
         end)))

(* P2, second half: interrupts based on Tme, delivery, [end,E]. *)
and primary_boundary_phase2 t ~tod =
  check_virtual_timer t ~tod;
  let ended = t.epoch_ in
  let deliver_set = List.rev t.buffered_current in
  t.buffered_current <- [];
  t.relay_epoch <- t.epoch_ + 1;
  emit t
    (Ev.Epoch_end { epoch = ended; interrupts = List.length deliver_set });
  emit t (Ev.Epoch_begin { epoch = ended + 1 });
  t.epoch_ <- t.epoch_ + 1;
  t.env_idx <- 0;
  t.st.Stats.epochs <- t.st.Stats.epochs + 1;
  t.pending_delivery <- t.pending_delivery @ deliver_set;
  let cost =
    Time.add t.p.Params.hv_send_setup
      (Time.scale t.p.Params.hv_intr_deliver (List.length deliver_set))
  in
  Stats.add_time t.st `Boundary cost;
  arm_epoch t;
  ignore
    (Engine.after t.engine ~label:"epoch-end" ~actor:t.name_ cost
       (guarded t ~label:"epoch-end" `Work (fun () ->
         if t.alive_ then begin
           if t.peer_alive then send_msg t (Message.Epoch_end { epoch = ended });
           if t.reintegrate_requested then start_reintegration t
           else begin
             deliver_pending_if_possible t;
             continue_vm t
           end
         end)))

and check_virtual_timer t ~tod =
  if t.vtimer_deadline_us >= 0 && t.vtimer_deadline_us <= tod then begin
    t.vtimer_deadline_us <- -1;
    t.buffered_current <-
      stamp t Bi_timer ~epoch:t.epoch_ :: t.buffered_current;
    t.st.Stats.interrupts_buffered <- t.st.Stats.interrupts_buffered + 1
  end

(* P5: wait for [Tme] and [end,E], then mirror the primary's epoch
   end.  P6/P7 take over if the primary has been declared dead. *)
and backup_boundary t =
  let e = t.epoch_ in
  if t.failover_notice = Some e then failover_epoch t ~promoting:false
  else
  match Hashtbl.find_opt t.tmes e with
  | None ->
    if t.peer_alive then begin
      t.blocked <- B_tme;
      arm_detector t
    end
    else promote t
  | Some (tod, deadline) ->
    if not (Hashtbl.mem t.ends e) then begin
      if t.peer_alive then begin
        t.blocked <- B_end;
        arm_detector t
      end
      else promote t
    end
    else begin
      (* Tme_b := Tme_p *)
      t.vtod_us <- tod;
      t.vtimer_deadline_us <- deadline;
      check_virtual_timer_backup t ~tod;
      let deliver_set = take_buffered t e in
      emit t
        (Ev.Epoch_end { epoch = e; interrupts = List.length deliver_set });
      emit t (Ev.Epoch_begin { epoch = e + 1 });
      t.epoch_ <- e + 1;
      t.env_idx <- 0;
      t.st.Stats.epochs <- t.st.Stats.epochs + 1;
      t.pending_delivery <- t.pending_delivery @ deliver_set;
      let cost =
        Time.add t.p.Params.hv_epoch_local
          (Time.scale t.p.Params.hv_intr_deliver (List.length deliver_set))
      in
      Stats.add_time t.st `Boundary cost;
      arm_epoch t;
      ignore
        (Engine.after t.engine ~label:"boundary-resume" ~actor:t.name_ cost
           (guarded t ~label:"boundary-resume" `Work (fun () ->
             if t.alive_ then begin
               deliver_pending_if_possible t;
               continue_vm t
             end)))
    end

and check_virtual_timer_backup t ~tod =
  if t.vtimer_deadline_us >= 0 && t.vtimer_deadline_us <= tod then begin
    t.vtimer_deadline_us <- -1;
    let r = buffered_ref t t.epoch_ in
    r := stamp t Bi_timer ~epoch:t.epoch_ :: !r;
    t.st.Stats.interrupts_buffered <- t.st.Stats.interrupts_buffered + 1
  end

and buffered_ref t e =
  match Hashtbl.find_opt t.buffered_by_epoch e with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t.buffered_by_epoch e r;
    r

and take_buffered t e =
  let l =
    match Hashtbl.find_opt t.buffered_by_epoch e with
    | Some r -> List.rev !r
    | None -> []
  in
  Hashtbl.remove t.buffered_by_epoch e;
  l

(* P6 and P7: the failover epoch.  Deliver what was relayed, then an
   uncertain completion for every I/O operation still outstanding.
   With [promoting] the node takes over as primary; without it (the
   chain extension) a downstream backup performs the identical
   delivery — it holds the same forwarded stream and the same
   suppressed-I/O record, so its state stays in lockstep with the new
   primary's — and then re-homes to the promoted node, whose stream
   already flows on the same channel. *)
and failover_epoch t ~promoting =
  let e = t.epoch_ in
  let tod =
    match Hashtbl.find_opt t.tmes e with
    | Some (tod, deadline) ->
      t.vtod_us <- tod;
      t.vtimer_deadline_us <- deadline;
      tod
    | None -> t.vtod_us
  in
  if promoting then
    (* virtual time continues from the last synchronised value *)
    t.vtod_offset_us <- t.vtod_us - Clock.read_us t.clock;
  check_virtual_timer_backup t ~tod;
  let deliver_set = take_buffered t e in
  let relayed_disk =
    List.length
      (List.filter
         (fun { bi; _ } ->
           match bi with Bi_disk _ -> true | Bi_timer -> false)
         deliver_set)
  in
  let to_synthesize = max 0 (Queue.length t.outstanding - relayed_disk) in
  let synths =
    List.init to_synthesize (fun _ ->
        stamp t
          (Bi_disk { Message.status = Layout.status_uncertain; dma = None })
          ~epoch:e)
  in
  t.st.Stats.uncertain_synthesized <-
    t.st.Stats.uncertain_synthesized + to_synthesize;
  let relayed = List.length deliver_set in
  emit t
    (if promoting then
       Ev.Promoted { epoch = e; relayed; synthesized = to_synthesize }
     else Ev.Failover_followed { epoch = e; relayed; synthesized = to_synthesize });
  emit t (Ev.Epoch_end { epoch = e; interrupts = relayed + to_synthesize });
  emit t (Ev.Epoch_begin { epoch = e + 1 });
  t.failover_notice <- None;
  if promoting then begin
    t.role_ <- Promoted;
    (* a chained downstream backup keeps replication alive *)
    t.peer_alive <- t.tx_data <> None;
    if t.peer_alive then send_msg t (Message.Failover { epoch = e })
  end;
  t.epoch_ <- e + 1;
  t.relay_epoch <- t.epoch_;
  t.env_idx <- 0;
  t.st.Stats.epochs <- t.st.Stats.epochs + 1;
  t.pending_delivery <- t.pending_delivery @ deliver_set @ synths;
  let cost =
    Time.add t.p.Params.hv_epoch_local
      (Time.scale t.p.Params.hv_intr_deliver (List.length t.pending_delivery))
  in
  arm_epoch t;
  if promoting then t.on_promote t;
  ignore
    (Engine.after t.engine ~label:"failover-resume" ~actor:t.name_ cost
       (guarded t ~label:"failover-resume" `Work (fun () ->
         if t.alive_ then begin
           deliver_pending_if_possible t;
           continue_vm t
         end)))

and promote t = failover_epoch t ~promoting:true

(* ---------- failure detection ---------- *)

and detector_fired t =
  if t.alive_ && not t.halted_ then begin
    emit t
      (Ev.Detector_fired
         {
           blocked =
             (match t.blocked with
             | B_tme -> "tme"
             | B_end -> "end"
             | B_env -> "env"
             | B_acks _ -> "acks"
             | B_snapshot -> "snapshot"
             | Not_blocked -> "none");
         });
    t.peer_alive <- false;
    clear_rtx t;
    match t.blocked with
    | B_tme | B_end ->
      t.blocked <- Not_blocked;
      backup_boundary t
    | B_env ->
      t.blocked <- Not_blocked;
      (* re-enter the environment simulation, which now self-sources *)
      continue_after_env_retry t
    | B_acks { upto; resume } ->
      (* the backup is gone: the primary continues unreplicated *)
      Stats.add_time t.st `Ack_wait
        (Time.diff (Engine.now t.engine) t.ack_wait_start);
      emit t (Ev.Ack_wait_end { upto; released = Ev.By_detector });
      t.blocked <- Not_blocked;
      (match resume with
      | R_boundary -> primary_boundary_phase2 t ~tod:t.boundary_tod
      | R_io req -> issue_io t req)
    | B_snapshot ->
      t.blocked <- Not_blocked;
      t.reintegrate_requested <- false;
      deliver_pending_if_possible t;
      continue_vm t
    | Not_blocked -> ()
  end

and continue_after_env_retry t =
  (* the pc still points at the environment instruction *)
  let i = (Cpu.code t.vm).(Cpu.pc t.vm) in
  sim_env t i

(* ---------- message handling ---------- *)

(* Fair-lossy receive filter: discard corrupt frames (treated as
   loss), drop duplicates of already-delivered reliable messages, and
   hold messages that arrived ahead of a gap until the gap fills, so
   [handle_body] sees exactly the sender's order — the FIFO semantics
   the protocol proper (P1-P7) was designed against. *)
and on_message t msg =
  if t.alive_ then
    match t.health with
    | Faulted (Hv_corrupt _) ->
      (* the receive interrupt enters the hypervisor, whose entry
         audit notices the scrambled recovery-block mirror; the frame
         itself is lost in the ensuing reboot *)
      t.dropped_while_down <- t.dropped_while_down + 1;
      begin_recovery t ~by:"integrity"
    | Faulted _ | Recovering ->
      (* a down hypervisor fields no receive interrupts: the frame
         dies at the adapter; resync and go-back-N heal the stream
         after the reboot *)
      t.dropped_while_down <- t.dropped_while_down + 1
    | Healthy ->
      t.heartbeat <- t.heartbeat + 1;
      handle_frame t msg;
      if t.alive_ && (match t.health with Healthy -> true | _ -> false) then
        persist t

and handle_frame t msg =
  begin
    if not (Message.valid msg) then begin
      t.st.Stats.corruptions_detected <- t.st.Stats.corruptions_detected + 1;
      emit t
        (Ev.Frame_dropped { wire_seq = msg.Message.seq; reason = Ev.Corrupt })
    end
    else if not (Message.reliable msg) then handle_body t msg.Message.body
    else begin
      let d = msg.Message.dseq in
      if d < t.data_recvd then begin
        (* already delivered: the ack covering it must have been lost *)
        t.st.Stats.duplicates_dropped <- t.st.Stats.duplicates_dropped + 1;
        emit t
          (Ev.Frame_dropped
             { wire_seq = msg.Message.seq; reason = Ev.Duplicate });
        send_ack t
      end
      else if d > t.data_recvd then begin
        if Hashtbl.mem t.rcv_hold d then begin
          t.st.Stats.duplicates_dropped <- t.st.Stats.duplicates_dropped + 1;
          emit t
            (Ev.Frame_dropped
               { wire_seq = msg.Message.seq; reason = Ev.Duplicate })
        end
        else Hashtbl.replace t.rcv_hold d msg.Message.body;
        (* a gap separates this message from the delivered prefix; the
           cumulative ack doubles as a gap signal, prompting the sender
           to retransmit the missing middle without waiting out its
           timer *)
        send_ack t
      end
      else begin
        (* in order: deliver it and any contiguous held successors,
           then acknowledge the whole prefix at once *)
        let rec drain body =
          t.data_recvd <- t.data_recvd + 1;
          handle_body t body;
          if t.alive_ then
            match Hashtbl.find_opt t.rcv_hold t.data_recvd with
            | Some b ->
              Hashtbl.remove t.rcv_hold t.data_recvd;
              drain b
            | None -> ()
        in
        drain msg.Message.body;
        if t.alive_ then send_ack t
      end
    end
  end

and apply_ack t upto =
  if upto > t.acked then begin
    t.acked <- upto;
    while
      (not (Queue.is_empty t.rtx_queue))
      && (Queue.peek t.rtx_queue).r_dseq < t.acked
    do
      let e = Queue.pop t.rtx_queue in
      emit t (Ev.Msg_acked { dseq = e.r_dseq })
    done;
    (* progress restarts the retransmission clock *)
    t.rtx_backoff <- 0;
    cancel_rtx t;
    arm_rtx t
  end

and handle_body t body =
  match body with
  | Message.Ack { upto } ->
    apply_ack t upto;
    (match t.blocked with
    (* "all messages previously sent" (P2) includes messages sent
       while the wait was in progress — e.g. a disk-read completion
       relayed mid-boundary — so the release condition re-checks the
       live send count, not the count captured when blocking *)
    | B_acks { upto = _; resume } when t.acked >= t.data_sent ->
      Stats.add_time t.st `Ack_wait
        (Time.diff (Engine.now t.engine) t.ack_wait_start);
      emit t (Ev.Ack_wait_end { upto = t.acked; released = Ev.By_ack });
      cancel_detector t;
      t.blocked <- Not_blocked;
      (match resume with
      | R_boundary -> primary_boundary_phase2 t ~tod:t.boundary_tod
      | R_io req -> issue_io t req)
    | _ -> ())
  | Message.Resync { upto } ->
    (* the peer just completed a microreboot: [upto] is its receive
       cursor.  Treat it as a cumulative ack, resend everything past
       it at once (whatever was in flight died at the peer's adapter),
       and re-ack our own cursor so a sender stranded in an ack wait
       by the outage is released without waiting out a timeout. *)
    apply_ack t upto;
    let n = Queue.length t.rtx_queue in
    if n > 0 then begin
      Queue.iter
        (fun e ->
          match (if e.r_up then ack_channel t else out_channel t) with
          | None -> ()
          | Some ch ->
            transmit t ch ?snapshot_bytes:e.r_snapshot_bytes ~dseq:e.r_dseq
              e.r_body)
        t.rtx_queue;
      t.st.Stats.retransmits <- t.st.Stats.retransmits + n;
      arm_rtx t
    end;
    send_ack t
  | body ->
    (match body with
    | Message.Intr { epoch; completion } ->
      let r = buffered_ref t epoch in
      r := stamp t (Bi_disk completion) ~epoch :: !r;
      t.st.Stats.interrupts_buffered <- t.st.Stats.interrupts_buffered + 1
    | Message.Env_val { epoch; idx; value } ->
      Hashtbl.replace t.env_vals (epoch, idx) value
    | Message.Tme { epoch; tod_us; timer_deadline_us } ->
      Hashtbl.replace t.tmes epoch (tod_us, timer_deadline_us)
    | Message.Epoch_end { epoch } -> Hashtbl.replace t.ends epoch ()
    | Message.Snapshot_offer { epoch; code_hash } ->
      receive_snapshot t ~epoch ~code_hash
    | Message.Snapshot_done { epoch = _ } -> (
      match t.blocked with
      | B_snapshot ->
        (* the handshake itself proves the offer (dseq 0 of the fresh
           messaging epoch) arrived, so retire it even when the wire
           ack was lost — otherwise its snapshot-sized retransmission
           timer keeps the whole queue pinned long past the failure
           detector's patience *)
        apply_ack t 1;
        cancel_detector t;
        t.blocked <- Not_blocked;
        t.peer_alive <- true;
        t.reintegrate_requested <- false;
        emit t (Ev.Reintegration_done { epoch = t.epoch_ });
        deliver_pending_if_possible t;
        continue_vm t
      | _ -> ())
    | Message.Failover { epoch } ->
      emit t (Ev.Upstream_failover { epoch });
      t.failover_notice <- Some epoch
    | Message.Ack _ | Message.Resync _ -> assert false);
    (* chained replication: a backup with a downstream relays the
       whole stream, preserving order; its own sequence numbers
       continue seamlessly if it is later promoted *)
    (match (t.role_, t.tx_data, body) with
    | Backup, Some _, (Message.Snapshot_offer _ | Message.Snapshot_done _) ->
      ()
    | Backup, Some _, _ -> send_msg t body
    | _ -> ());
    (* resume a blocked state machine if its wait is satisfied *)
    (match t.blocked with
    | B_tme | B_end ->
      cancel_detector t;
      t.blocked <- Not_blocked;
      backup_boundary t
    | B_env ->
      if Hashtbl.mem t.env_vals (t.epoch_, t.env_idx) then begin
        cancel_detector t;
        t.blocked <- Not_blocked;
        continue_after_env_retry t
      end
    | _ -> ())

(* ---------- reintegration (extension) ---------- *)

and take_snapshot t =
  let ctl = Disk_ctl.create () in
  Disk_ctl.copy_state_from ctl t.ctl;
  let bytes_before = Cpu.snapshot_bytes_copied t.vm in
  let s_cpu = Cpu.snapshot t.vm in
  t.st.Stats.snapshot_delta_bytes <-
    t.st.Stats.snapshot_delta_bytes
    + (Cpu.snapshot_bytes_copied t.vm - bytes_before);
  {
    s_cpu;
    s_vcrs = Array.copy t.vcrs;
    s_ctl = ctl;
    s_outstanding = List.of_seq (Queue.to_seq t.outstanding);
    s_pending = t.pending_delivery;
    s_vtimer = t.vtimer_deadline_us;
    s_vtod = read_vtod t;
    s_epoch = t.epoch_;
  }

and start_reintegration t =
  match t.peer with
  | None -> ()
  | Some peer ->
    (* fresh messaging epoch: the counters still reflect this node's
       previous career (as the backup, every ack it sent bumped
       send_seq), and cumulative acknowledgements only make sense if
       both sides restart from zero *)
    t.send_seq <- 0;
    t.data_sent <- 0;
    t.acked <- 0;
    t.data_recvd <- 0;
    clear_rtx t;
    Hashtbl.reset t.rcv_hold;
    let snap = take_snapshot t in
    peer.snapshot_box <- Some snap;
    let mem_bytes = 4 * Memory.size (Cpu.mem t.vm) in
    send_msg ~snapshot_bytes:mem_bytes t
      (Message.Snapshot_offer
         {
           epoch = t.epoch_;
           code_hash = Encode.program_hash (Cpu.code t.vm);
         });
    t.blocked <- B_snapshot;
    t.peer_alive <- true (* provisional: allow the offer to flow *);
    (* the whole VM image travels over the link: the give-up timeout
       must cover its transfer time, not just the normal heartbeat *)
    let transfer =
      Hft_net.Link.transfer_time t.p.Params.link ~bytes:mem_bytes
    in
    arm_detector
      ~timeout:
        (Time.add (Time.scale transfer 2)
           (Time.scale t.p.Params.detector_timeout 2))
      t;
    emit t (Ev.Reintegration_offer { epoch = t.epoch_; bytes = mem_bytes })

and receive_snapshot t ~epoch ~code_hash =
  match t.snapshot_box with
  | None -> emit t (Ev.Note "snapshot offer with no snapshot data; ignored")
  | Some snap ->
    if code_hash <> Encode.program_hash (Cpu.code t.vm) then
      failwith (t.name_ ^ ": reintegration with different code image");
    t.snapshot_box <- None;
    Cpu.restore t.vm snap.s_cpu;
    Array.blit snap.s_vcrs 0 t.vcrs 0 Array.(length t.vcrs);
    apply_vstatus t;
    Disk_ctl.copy_state_from t.ctl snap.s_ctl;
    Queue.clear t.outstanding;
    List.iter (fun r -> Queue.add r t.outstanding) snap.s_outstanding;
    t.vtimer_deadline_us <- snap.s_vtimer;
    t.vtod_us <- snap.s_vtod;
    t.epoch_ <- epoch;
    t.relay_epoch <- epoch;
    t.env_idx <- 0;
    t.role_ <- Backup;
    t.peer_alive <- true;
    t.blocked <- Not_blocked;
    t.pending_delivery <- snap.s_pending;
    t.buffered_current <- [];
    Hashtbl.reset t.buffered_by_epoch;
    Hashtbl.reset t.env_vals;
    Hashtbl.reset t.tmes;
    Hashtbl.reset t.ends;
    (match t.p.Params.epoch_mechanism with
    | Params.Recovery_register -> Cpu.set_recovery t.vm t.p.Params.epoch_length
    | Params.Code_rewriting -> Cpu.disable_recovery t.vm);
    (* reliable: a lost [Snapshot_done] would strand the primary in
       B_snapshot until its detector gave the peer up for dead *)
    send_msg ~up:true t (Message.Snapshot_done { epoch });
    emit t (Ev.Snapshot_restored { epoch });
    emit t (Ev.Epoch_begin { epoch });
    ignore
      (Engine.after t.engine ~label:"reintegrated" ~actor:t.name_ Time.zero
         (guarded t ~label:"reintegrated" `Work (fun () ->
              deliver_pending_if_possible t;
              continue_vm t)))

(* ---------- hypervisor-failure recovery (ReHype extension) ---------- *)

and hv_healthy t = match t.health with Healthy -> true | _ -> false

(* Commit the protected protocol counters to the recovery block.
   Called at the end of every event-handling quantum, so the mirror is
   consistent at every event boundary — the only instants at which a
   fault can be injected. *)
and persist t =
  let rb = t.rb in
  rb.rb_epoch <- t.epoch_;
  rb.rb_relay_epoch <- t.relay_epoch;
  rb.rb_env_idx <- t.env_idx;
  rb.rb_send_seq <- t.send_seq;
  rb.rb_data_sent <- t.data_sent;
  rb.rb_acked <- t.acked;
  rb.rb_data_recvd <- t.data_recvd;
  rb.rb_rtx <- List.of_seq (Queue.to_seq t.rtx_queue)

(* Every hypervisor-owned event handler enters through this guard.
   Healthy: pat the heartbeat (the out-of-band watchdog's only view of
   us), run the handler, commit the recovery block.  Down: [`Work]
   continuations — the VM loop, epoch boundaries — are latched for
   FIFO replay after the reboot; [`Timer] events (failure detector,
   retransmission clock) simply die, because a hung hypervisor cannot
   service its own timers — the reboot re-arms them from scratch.  A
   corruption fault is caught here, before the handler would act on
   the scrambled state: the entry audit compares the live counters
   against the recovery-block mirror. *)
and guarded t ~label kind fn () =
  match t.health with
  | Healthy ->
    t.heartbeat <- t.heartbeat + 1;
    fn ();
    if t.alive_ && hv_healthy t then persist t
  | Faulted (Hv_corrupt _) ->
    (match kind with
    | `Work -> t.missed <- (label, fn) :: t.missed
    | `Timer -> ());
    begin_recovery t ~by:"integrity"
  | Faulted _ | Recovering -> (
    match kind with
    | `Work -> t.missed <- (label, fn) :: t.missed
    | `Timer -> ())

and scramble t = function
  | C_epoch ->
    (* wild writes land in the epoch bookkeeping *)
    t.epoch_ <- t.epoch_ + 7919;
    t.relay_epoch <- t.relay_epoch + 104729;
    t.env_idx <- t.env_idx + 13
  | C_acks ->
    t.acked <- t.acked + 5077;
    t.data_recvd <- t.data_recvd + 7577;
    t.data_sent <- t.data_sent + 3169
  | C_rtx ->
    (* the in-flight bookkeeping is lost wholesale *)
    Queue.clear t.rtx_queue;
    t.rtx_backoff <- 0

(* Seed a hypervisor fault.  With [hv_recovery] off this is the
   paper's world: hypervisor failures are fail-stop and the peer's
   failover takes over.  With it on, detection depends on the kind:
   a crash reaches recovery through the panic handler, a hang is only
   visible to the out-of-band watchdog, and corruption surfaces at the
   next guarded entry's integrity audit. *)
and inject_hv_fault t fault =
  if t.alive_ && not t.halted_ then begin
    t.st.Stats.hv_faults_injected <- t.st.Stats.hv_faults_injected + 1;
    emit t (Ev.Hv_fault { kind = hv_fault_kind fault });
    if not t.p.Params.hv_recovery then do_crash t
    else
      match t.health with
      | Faulted _ | Recovering ->
        (* double fault: a second failure while detection or recovery
           is in progress exceeds what an in-place reboot can untangle *)
        t.st.Stats.recovery_escalations <-
          t.st.Stats.recovery_escalations + 1;
        emit t (Ev.Recovery_escalated { reason = "double fault" });
        do_crash t
      | Healthy -> (
        t.fault_since <- Engine.now t.engine;
        t.health <- Faulted fault;
        (* a down hypervisor cannot field completion interrupts: the
           controller parks them until reconciliation (IO1 holds
           across the reboot) *)
        Disk.defer_port t.disk ~port:t.port;
        match fault with
        | Hv_crash ->
          (* the panic handler runs from the exception path, outside
             the wedged event loop *)
          ignore
            (Engine.after t.engine ~label:"hv-panic" ~actor:t.name_
               t.p.Params.hv_panic_latency (fun () ->
                 if t.alive_ && t.health = Faulted Hv_crash then
                   begin_recovery t ~by:"panic"))
        | Hv_hang ->
          (* Only out-of-band hardware can notice a hang: the
             hypervisor cannot service its own detector, and indeed
             every hypervisor-owned timer above routes through
             [guarded], where a down hypervisor drops it.  The
             watchdog samples the heartbeat on its own absolute grid —
             the next multiple of its interval, exactly where a
             free-running watchdog's tick would land. *)
          let iv = Time.to_ns t.p.Params.watchdog_interval in
          let now = Time.to_ns (Engine.now t.engine) in
          let tick = Time.of_ns (((now / iv) + 1) * iv) in
          let seen = t.heartbeat in
          ignore
            (Engine.at t.engine ~label:"hv-watchdog" ~actor:t.name_ tick
               (fun () ->
                 if t.alive_ && t.heartbeat = seen && not (hv_healthy t) then
                   begin_recovery t ~by:"watchdog"))
        | Hv_corrupt target -> scramble t target)
  end

and begin_recovery t ~by =
  if t.alive_ && not t.halted_ then begin
    emit t (Ev.Hv_detected { by });
    if t.st.Stats.microreboots >= t.p.Params.hv_recovery_max then begin
      t.st.Stats.recovery_escalations <- t.st.Stats.recovery_escalations + 1;
      emit t (Ev.Recovery_escalated { reason = "recovery budget exhausted" });
      do_crash t
    end
    else begin
      t.health <- Recovering;
      t.st.Stats.recovery_cycles <- t.st.Stats.recovery_cycles + 1;
      (* the reboot completion is raw, not guarded: it IS the recovery *)
      ignore
        (Engine.after t.engine ~label:"hv-reboot" ~actor:t.name_
           t.p.Params.hv_reboot_time (fun () -> complete_microreboot t))
    end
  end

(* The in-place microreboot.  Guest memory, CPU state, the virtual
   device controllers and the suppressed-I/O record were preserved in
   place; this path restores the protected counters from the recovery
   block, rebuilds the volatile pieces, and reconciles everything that
   was in flight — parked disk completions, dropped channel frames,
   unacknowledged sends — before letting the epoch machinery resume. *)
and complete_microreboot t =
  if t.alive_ && not t.halted_ then begin
    (* 1. protected counters come back from the recovery block; this
       also heals whatever a corruption fault scrambled *)
    let rb = t.rb in
    t.epoch_ <- rb.rb_epoch;
    t.relay_epoch <- rb.rb_relay_epoch;
    t.env_idx <- rb.rb_env_idx;
    t.send_seq <- rb.rb_send_seq;
    t.data_sent <- rb.rb_data_sent;
    t.acked <- rb.rb_acked;
    t.data_recvd <- rb.rb_data_recvd;
    Queue.clear t.rtx_queue;
    List.iter (fun e -> Queue.add e t.rtx_queue) rb.rb_rtx;
    (* 2. volatile state did not survive: stale timer handles are
       cancelled (safe on already-fired events), interrupt-level debt
       is void, and the receive-side reassembly window restarts — its
       contents count as reconciled, the peer resends them *)
    cancel_detector t;
    cancel_rtx t;
    t.rtx_backoff <- 0;
    t.debt <- Time.zero;
    let held = Hashtbl.length t.rcv_hold in
    Hashtbl.reset t.rcv_hold;
    let msgs = held + t.dropped_while_down in
    t.dropped_while_down <- 0;
    t.st.Stats.reconciled_msgs <- t.st.Stats.reconciled_msgs + msgs;
    t.st.Stats.microreboots <- t.st.Stats.microreboots + 1;
    t.st.Stats.recovery_windows <-
      Time.diff (Engine.now t.engine) t.fault_since
      :: t.st.Stats.recovery_windows;
    t.health <- Healthy;
    persist t;
    (* 3. outstanding disk I/O: completions the controller parked
       while the port was masked are delivered now, in arrival order
       (each re-enters the buffering/relay path and commits the
       recovery block itself) *)
    let ios = Disk.release_port t.disk ~port:t.port in
    t.st.Stats.reconciled_ios <- t.st.Stats.reconciled_ios + ios;
    (* 4. in-flight channel traffic: tell the peer where our receive
       cursor stands — it treats that as a cumulative ack, resends
       everything past it, and re-acks, releasing any ack wait the
       outage stranded; our own retransmission clock restarts for the
       restored queue *)
    if t.peer_alive then send_up t (Message.Resync { upto = t.data_recvd });
    arm_rtx t;
    if t.blocked <> Not_blocked && t.peer_alive then arm_detector t;
    emit t
      (Ev.Microreboot_done
         { epoch = t.epoch_; reconciled_ios = ios; reconciled_msgs = msgs });
    (* 5. replay the work the down hypervisor missed, oldest first.
       Each latched thunk was the single continuation pending when it
       fired, so FIFO replay reconstructs the exact sequence the
       healthy hypervisor would have run — no guest-visible
       divergence.  Never re-enter [continue_vm] directly here: the
       loop's own continuation is either in this list or still
       pending. *)
    let work = List.rev t.missed in
    t.missed <- [];
    List.iter
      (fun (_label, fn) ->
        if t.alive_ && hv_healthy t then begin
          fn ();
          if t.alive_ && hv_healthy t then persist t
        end)
      work
  end

(* Fail-stop, the paper's original failure semantics: the node goes
   silent for good and the peer's failure detector drives a failover.
   Also the escalation target when in-place recovery is exhausted or a
   double fault hits.  Parked completion interrupts die with the
   processor — a later revived incarnation must not see them. *)
and do_crash t =
  t.alive_ <- false;
  t.health <- Healthy;
  t.missed <- [];
  t.dropped_while_down <- 0;
  cancel_detector t;
  clear_rtx t;
  ignore (Disk.drop_port t.disk ~port:t.port);
  (match t.tx_data with Some ch -> Channel.crash_sender ch | None -> ());
  (match t.tx_ack with Some ch -> Channel.crash_sender ch | None -> ());
  emit t Ev.Crash

let request_reintegration t =
  match t.role_ with
  | Backup -> invalid_arg "Hypervisor.request_reintegration: not a primary"
  | Primary | Promoted -> t.reintegrate_requested <- true

let revive_as_backup t =
  t.alive_ <- true;
  t.halted_ <- false;
  t.role_ <- Backup;
  t.peer_alive <- true;
  t.blocked <- Not_blocked;
  t.debt <- Time.zero;
  t.send_seq <- 0;
  t.data_sent <- 0;
  t.acked <- 0;
  t.data_recvd <- 0;
  clear_rtx t;
  Hashtbl.reset t.rcv_hold;
  t.health <- Healthy;
  t.heartbeat <- 0;
  t.missed <- [];
  t.dropped_while_down <- 0;
  ignore (Disk.drop_port t.disk ~port:t.port);
  persist t;
  (match t.tx_data with Some ch -> Channel.revive_sender ch | None -> ());
  (match t.tx_ack with Some ch -> Channel.revive_sender ch | None -> ())

let crash = do_crash

let hv_health t = t.health

let start t =
  Guest_results.write_config t.vm t.workload.Hft_guest.Workload.config;
  emit t (Ev.Epoch_begin { epoch = 0 });
  (* the kernel boots at real privilege 1 = virtual privilege 0 *)
  apply_vstatus t;
  (match t.p.Params.epoch_mechanism with
  | Params.Recovery_register -> Cpu.set_recovery t.vm t.p.Params.epoch_length
  | Params.Code_rewriting ->
    Cpu.disable_recovery t.vm;
    Cpu.set_reg t.vm Hft_machine.Rewrite.counter_reg t.p.Params.epoch_length);
  ignore
    (Engine.after t.engine ~label:"start" ~actor:t.name_ Time.zero
       (guarded t ~label:"start" `Work (fun () -> continue_vm t)))

(* ---------- model-checker accessors ---------- *)

let outstanding_io t = Queue.length t.outstanding

(* Canonical digest of the protocol state.  Arrival stamps ([since],
   [ack_wait_start], [halt_time_]) are deliberately excluded: they
   feed timing statistics, not behaviour, and including them would
   split states that cannot diverge.  Hash tables are folded with xor
   so iteration order does not matter. *)
let fingerprint t =
  let bh x = Hashtbl.hash_param 128 256 x in
  let xor_tbl f tbl = Hashtbl.fold (fun k v acc -> acc lxor f k v) tbl 0 in
  let bi_list l = List.map (fun { bi; _ } -> bi) l in
  let queue_fold f init q = Queue.fold f init q in
  let rtx =
    queue_fold
      (fun acc e -> bh (acc, e.r_dseq, e.r_body, e.r_up))
      0x7a11 t.rtx_queue
  in
  let outs =
    queue_fold (fun acc r -> bh (acc, r.cmd, r.block, r.dma)) 0x0dd t.outstanding
  in
  let blocked =
    match t.blocked with
    | Not_blocked -> 0
    | B_acks { upto; resume } ->
      bh (1, upto, match resume with R_boundary -> None | R_io r -> Some r)
    | B_tme -> 2
    | B_end -> 3
    | B_env -> 4
    | B_snapshot -> 5
  in
  let h = vm_state_hash t in
  let h = bh (h, t.role_, t.alive_, t.peer_alive, t.halted_, blocked) in
  let h = bh (h, t.epoch_, t.relay_epoch, t.env_idx, t.failover_notice) in
  let h =
    bh (h, t.send_seq, t.data_sent, t.acked, t.data_recvd, t.rtx_backoff, rtx)
  in
  let h = bh (h, xor_tbl (fun d body -> bh (d, body)) t.rcv_hold) in
  let h = bh (h, bi_list t.buffered_current, bi_list t.pending_delivery) in
  let h =
    bh (h, xor_tbl (fun e r -> bh (e, bi_list !r)) t.buffered_by_epoch)
  in
  let h = bh (h, xor_tbl (fun k v -> bh (k, v)) t.env_vals) in
  let h = bh (h, xor_tbl (fun e tv -> bh (e, tv)) t.tmes) in
  let h = bh (h, xor_tbl (fun e () -> bh e) t.ends) in
  let h = bh (h, outs, t.vtimer_deadline_us, t.vtod_us, t.vtod_offset_us) in
  let h = bh (h, t.boundary_tod, Time.to_ns t.debt) in
  let h =
    bh
      ( h,
        t.reintegrate_requested,
        (match t.snapshot_box with None -> -1 | Some s -> s.s_epoch),
        t.detector <> None,
        t.rtx_timer <> None )
  in
  (* Recovery state.  The heartbeat is excluded: it is a per-event
     tick (including it would make every path length a distinct
     state); its only observable effect — frozen vs advancing — is
     captured by [health] plus the pending watchdog event.  The
     recovery block's list is summarised by its [dseq]s (the bodies
     are determined by the live queue at persist time). *)
  let health_code =
    match t.health with
    | Healthy -> 0
    | Recovering -> 1
    | Faulted Hv_crash -> 2
    | Faulted Hv_hang -> 3
    | Faulted (Hv_corrupt C_epoch) -> 4
    | Faulted (Hv_corrupt C_acks) -> 5
    | Faulted (Hv_corrupt C_rtx) -> 6
  in
  let rb = t.rb in
  let rb_rtx = List.fold_left (fun acc e -> bh (acc, e.r_dseq)) 0x5ec rb.rb_rtx in
  let h =
    bh
      ( h,
        health_code,
        List.map fst t.missed,
        t.dropped_while_down,
        ( rb.rb_epoch, rb.rb_relay_epoch, rb.rb_env_idx, rb.rb_send_seq,
          rb.rb_data_sent, rb.rb_acked, rb.rb_data_recvd, rb_rtx ) )
  in
  h
