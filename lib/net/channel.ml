open Hft_sim

type fault_model = {
  loss : float;
  duplicate : float;
  corrupt : float;
  delay_us : int;
}

let fair = { loss = 0.0; duplicate = 0.0; corrupt = 0.0; delay_us = 0 }

type 'msg faults = {
  model : fault_model;
  rng : Rng.t;
  corrupter : (int -> 'msg -> 'msg) option;
}

type 'msg t = {
  engine : Engine.t;
  lnk : Link.t;
  name_ : string;
  actor_ : string;
  obs : Hft_obs.Recorder.t;
  mutable receiver : ('msg -> unit) option;
  mutable crashed : bool;
  mutable loss_plan : int -> bool;
  mutable faults : 'msg faults option;
  mutable hasher : ('msg -> int) option;
  mutable busy_until_ : Time.t;
  mutable sent : int;
  mutable bytes : int;
  mutable delivered : int;
  mutable in_flight_ : int;
  mutable inflight_hash_ : int;
  mutable lost_ : int;
  mutable duplicated_ : int;
  mutable corrupted_ : int;
  mutable delayed_ : int;
}

let create ~engine ~link ~name ?(actor = "") ?(obs = Hft_obs.Recorder.null) ()
    =
  {
    engine;
    lnk = link;
    name_ = name;
    actor_ = actor;
    obs;
    receiver = None;
    crashed = false;
    loss_plan = (fun _ -> false);
    faults = None;
    hasher = None;
    busy_until_ = Time.zero;
    sent = 0;
    bytes = 0;
    delivered = 0;
    in_flight_ = 0;
    inflight_hash_ = 0;
    lost_ = 0;
    duplicated_ = 0;
    corrupted_ = 0;
    delayed_ = 0;
  }

let name t = t.name_
let link t = t.lnk

let connect t f =
  (match t.receiver with
  | Some _ -> invalid_arg "Channel.connect: receiver already installed"
  | None -> ());
  t.receiver <- Some f

let set_fault_model t ~rng ?corrupter model =
  if
    model.loss < 0.0 || model.loss >= 1.0
    || model.duplicate < 0.0 || model.duplicate > 1.0
    || model.corrupt < 0.0 || model.corrupt > 1.0
    || model.delay_us < 0
  then invalid_arg "Channel.set_fault_model: rates out of range";
  t.faults <- Some { model; rng; corrupter }

let clear_fault_model t = t.faults <- None

let msg_hash t msg =
  match t.hasher with Some h -> h msg | None -> 0

let emit t ev =
  if Hft_obs.Recorder.enabled t.obs then
    Hft_obs.Recorder.emit t.obs ~time:(Engine.now t.engine) ~source:t.name_ ev

let deliver t ~seq arrival msg =
  t.in_flight_ <- t.in_flight_ + 1;
  t.inflight_hash_ <- t.inflight_hash_ lxor msg_hash t msg;
  ignore
    (Engine.at t.engine ~label:(t.name_ ^ " deliver") ~actor:t.actor_ arrival
       (fun () ->
         t.in_flight_ <- t.in_flight_ - 1;
         t.inflight_hash_ <- t.inflight_hash_ lxor msg_hash t msg;
         t.delivered <- t.delivered + 1;
         emit t (Hft_obs.Event.Ch_deliver { seq });
         match t.receiver with
         | Some f -> f msg
         | None ->
           invalid_arg
             (Printf.sprintf "Channel %s: delivery with no receiver" t.name_)))

(* Draw the fault dice for one copy of a message: an extra network
   delay (queueing beyond serialization — this is what breaks FIFO
   order) and possible payload damage. *)
let faulty_copy t f msg =
  let jitter =
    if f.model.delay_us = 0 then Time.zero
    else begin
      let d = Rng.int f.rng (f.model.delay_us + 1) in
      if d > 0 then t.delayed_ <- t.delayed_ + 1;
      Time.of_us d
    end
  in
  let msg =
    if Rng.chance f.rng f.model.corrupt then begin
      t.corrupted_ <- t.corrupted_ + 1;
      match f.corrupter with
      | Some c -> c (Int64.to_int (Int64.logand (Rng.bits64 f.rng) 0xFFFFL)) msg
      | None -> msg
    end
    else msg
  in
  (jitter, msg)

let send t ~bytes msg =
  if not t.crashed then begin
    let seq = t.sent in
    t.sent <- t.sent + 1;
    t.bytes <- t.bytes + bytes;
    let start = Time.max (Engine.now t.engine) t.busy_until_ in
    let arrival = Time.add start (Link.transfer_time t.lnk ~bytes) in
    t.busy_until_ <- arrival;
    emit t (Hft_obs.Event.Ch_send { seq; bytes });
    if t.loss_plan seq then
      emit t
        (Hft_obs.Event.Ch_drop { seq; bytes; reason = Hft_obs.Event.Loss_plan })
    else begin
      match t.faults with
      | None -> deliver t ~seq arrival msg
      | Some f ->
        if Rng.chance f.rng f.model.loss then begin
          t.lost_ <- t.lost_ + 1;
          emit t
            (Hft_obs.Event.Ch_drop
               { seq; bytes; reason = Hft_obs.Event.Fault_loss })
        end
        else begin
          let jitter, msg' = faulty_copy t f msg in
          deliver t ~seq (Time.add arrival jitter) msg';
          if Rng.chance f.rng f.model.duplicate then begin
            t.duplicated_ <- t.duplicated_ + 1;
            let jitter2, msg'' = faulty_copy t f msg in
            deliver t ~seq (Time.add arrival jitter2) msg''
          end
        end
    end
  end

let crash_sender t = t.crashed <- true
let sender_crashed t = t.crashed
let revive_sender t = t.crashed <- false

let set_loss_plan t p = t.loss_plan <- p
let set_hasher t h = t.hasher <- Some h

let fingerprint t =
  let busy_left =
    let now = Engine.now t.engine in
    if Time.(t.busy_until_ <= now) then 0
    else Time.to_ns (Time.diff t.busy_until_ now)
  in
  Hashtbl.hash
    ( t.sent,
      t.delivered,
      t.crashed,
      t.in_flight_,
      t.inflight_hash_,
      busy_left )

let in_flight t = t.in_flight_
let messages_sent t = t.sent
let bytes_sent t = t.bytes
let messages_delivered t = t.delivered
let busy_until t = t.busy_until_
let faults_lost t = t.lost_
let faults_duplicated t = t.duplicated_
let faults_corrupted t = t.corrupted_
let faults_delayed t = t.delayed_
