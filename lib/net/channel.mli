(** Unidirectional message channel between two hypervisors.

    With no fault model installed the channel matches the communication
    assumptions of section 2 of the paper:

    - delivery is FIFO: messages arrive in the order sent;
    - a processor crash loses no message already sent — everything in
      flight is still delivered before the peer can detect the failure
      (the paper assumes failure is detected "only after receiving the
      last message sent by the primary's hypervisor");
    - messages sent after a crash are never delivered (they were never
      sent).

    Latency follows the channel's {!Link}: each message waits for the
    link to become free (serialization), then takes the link's
    per-message overhead plus wire time.  A deterministic loss plan
    can drop selected messages, used by tests that probe the revised
    protocol's reasoning about unacknowledged messages.

    A {!fault_model} downgrades the channel to {e fair-lossy}:
    messages may additionally be dropped, delayed past later messages
    (breaking FIFO), duplicated, or corrupted, with every coin flip
    drawn from a caller-supplied seeded {!Hft_sim.Rng.t} so campaign
    trials replay exactly. *)

type 'msg t

(** Randomized fault model for chaos campaigns.  Probabilities are per
    message; [delay_us] is the maximum extra delivery delay, drawn
    uniformly in [0, delay_us], applied after serialization (so a
    large draw lets a later message overtake this one). *)
type fault_model = {
  loss : float;  (** drop probability, [0 <= loss < 1] *)
  duplicate : float;  (** second-copy probability *)
  corrupt : float;  (** payload-damage probability *)
  delay_us : int;  (** max extra delay, microseconds *)
}

val fair : fault_model
(** The identity model: no loss, no duplication, no corruption, no
    jitter. *)

val create :
  engine:Hft_sim.Engine.t ->
  link:Link.t ->
  name:string ->
  ?actor:string ->
  ?obs:Hft_obs.Recorder.t ->
  unit ->
  'msg t
(** [actor] tags this channel's delivery events for the model
    checker's independence relation — conventionally the {e receiving}
    node's name, since a delivery handler mutates receiver state.
    Defaults to [""] (dependent with everything).  [obs] receives
    typed wire events ([Ch_send]/[Ch_deliver]/[Ch_drop]) under this
    channel's name; defaults to the null recorder. *)

val name : 'msg t -> string
val link : 'msg t -> Link.t

val connect : 'msg t -> ('msg -> unit) -> unit
(** Install the receiver callback.  Must be called before the first
    delivery is due. *)

val send : 'msg t -> bytes:int -> 'msg -> unit
(** Enqueue a message of the given size.  Silently discarded if the
    sender has crashed (a dead processor sends nothing). *)

val crash_sender : 'msg t -> unit
(** The sending processor has failed: subsequent {!send}s are
    discarded; in-flight messages are still delivered. *)

val sender_crashed : 'msg t -> bool

val revive_sender : 'msg t -> unit
(** Repair after {!crash_sender}: the (replaced or repaired) sending
    processor may transmit again.  Used by backup reintegration. *)

val set_loss_plan : 'msg t -> (int -> bool) -> unit
(** [set_loss_plan t p] drops message number [n] (0-based count of
    sends) whenever [p n] is true.  Dropped messages consume link time
    but are not delivered. *)

val set_fault_model :
  'msg t ->
  rng:Hft_sim.Rng.t ->
  ?corrupter:(int -> 'msg -> 'msg) ->
  fault_model ->
  unit
(** Install a randomized fault model.  [corrupter flip msg] produces
    the damaged copy of [msg] (for the hypervisor channel this is
    {!Hft_core.Message.corrupt}); without it corruption draws still
    consume randomness but deliver the message intact.  Faults compose
    with the deterministic loss plan (the plan is consulted first).
    Raises [Invalid_argument] if a rate is out of range. *)

val clear_fault_model : 'msg t -> unit

val in_flight : 'msg t -> int
(** Messages sent but not yet delivered (excluding dropped ones). *)

val messages_sent : 'msg t -> int
val bytes_sent : 'msg t -> int
val messages_delivered : 'msg t -> int

val faults_lost : 'msg t -> int
(** Messages dropped by the fault model (not the loss plan). *)

val faults_duplicated : 'msg t -> int
val faults_corrupted : 'msg t -> int
val faults_delayed : 'msg t -> int
(** Messages given a nonzero extra delay. *)

val busy_until : 'msg t -> Hft_sim.Time.t
(** Time at which the link becomes idle. *)

val set_hasher : 'msg t -> ('msg -> int) -> unit
(** Install a message hash used to maintain an order-insensitive
    digest of the in-flight multiset.  Without one, in-flight messages
    contribute only their count to {!fingerprint}. *)

val fingerprint : 'msg t -> int
(** Canonical digest of the channel state for the model checker:
    send/delivery counters, crash flag, in-flight count and multiset
    hash, and remaining serialization busy time (relative to now, so
    equal states reached at different instants can still merge). *)
