(* Generates the loop-heavy example images shipped in
   [examples/images/]: a counted single-block loop (fully bounded, and
   hoistable by the threaded translator), a two-level nest (inner
   bounded, outer deliberately defeating inference so the manifest
   carries a witness path), and a guarded scan with an early exit (a
   multi-block bounded loop).  Each image embeds its hftsim-manifest/2
   compilation manifest so loaders can validate certificates against
   the code before running.

   Run from the repository root:
     dune exec examples/gen_loop_images.exe *)

let save ~name program =
  let manifest =
    Hft_analysis.Manifest.to_json
      (Hft_analysis.Manifest.of_program ~rewritten:false program)
  in
  let path = Filename.concat "examples/images" name in
  Hft_machine.Image.save ~manifest ~path program;
  Format.printf "wrote %s (%d instructions, manifest embedded)@." path
    (Array.length program.Hft_machine.Asm.code)

let counted =
  Hft_machine.Asm.(
    assemble
      [
        comment "counted: 256-iteration checksum through one buffer word";
        ldi r2 0;
        ldi r3 256;
        ldi r4 0x1000;
        ldi r5 0;
        label "loop";
        st r5 r4 0;
        comment "load back the word just stored (store-forwardable)";
        ld r6 r4 0;
        add r5 r5 r6;
        addi r5 r5 1;
        addi r2 r2 1;
        bltu r2 r3 (lbl "loop");
        st r5 r4 8;
        halt;
      ])

let nested =
  Hft_machine.Asm.(
    assemble
      [
        comment "nested: 8 outer sweeps of a 64-iteration inner loop";
        ldi r6 0;
        ldi r2 0;
        ldi r3 8;
        label "outer";
        ldi r4 0;
        ldi r5 64;
        label "inner";
        addi r4 r4 1;
        xor r6 r6 r4;
        bltu r4 r5 (lbl "inner");
        addi r2 r2 1;
        bltu r2 r3 (lbl "outer");
        st r6 r0 0x1000;
        halt;
      ])

let early_exit =
  Hft_machine.Asm.(
    assemble
      [
        comment "early exit: scan up to 128 words, stop at a sentinel";
        ldi r2 0;
        ldi r3 128;
        ldi r4 0x1000;
        ldi r5 0xdead;
        label "scan";
        add r7 r4 r2;
        ld r6 r7 0;
        beq r6 r5 (lbl "found");
        addi r2 r2 1;
        bltu r2 r3 (lbl "scan");
        label "found";
        st r2 r4 0x100;
        halt;
      ])

let () =
  save ~name:"loop_counted.img" counted;
  save ~name:"loop_nested.img" nested;
  save ~name:"loop_early_exit.img" early_exit
