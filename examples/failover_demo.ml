(* Failover demonstration: the primary's processor fail-stops while
   the guest is writing to disk; the backup detects the failure,
   finishes the failover epoch, synthesizes uncertain interrupts for
   the outstanding I/O (protocol rule P7), promotes itself, and the
   guest's driver — which knows nothing about any of this — retries
   and completes the workload.

     dune exec examples/failover_demo.exe

   The environment-visible outcome is checked two ways: the disk's
   operation log must be one a single processor could have produced,
   and the final disk contents must equal a crash-free run's. *)

open Hft_core

let () =
  let ops = 6 in
  let workload = Hft_guest.Workload.disk_write ~ops () in
  let params = { Params.default with Params.epoch_length = 1024 } in

  let obs = Hft_obs.Recorder.create () in
  let sys = System.create ~params ~obs ~workload () in

  (* kill the primary 40 virtual milliseconds in: mid-disk-operation *)
  System.crash_primary_at sys (Hft_sim.Time.of_ms 40);
  let o = System.run sys in

  Format.printf "--- protocol events ---@.";
  let interesting (e : Hft_obs.Recorder.entry) =
    match e.Hft_obs.Recorder.ev with
    | Hft_obs.Event.Crash | Hft_obs.Event.Detector_fired _
    | Hft_obs.Event.Promoted _ | Hft_obs.Event.Halt _
    | Hft_obs.Event.Intr_buffered _ | Hft_obs.Event.Io_suppressed _ ->
      true
    | _ -> false
  in
  List.iter
    (fun (e : Hft_obs.Recorder.entry) ->
      if interesting e then
        Format.printf "%10.3fms %-8s %a@."
          (Hft_sim.Time.to_ms e.Hft_obs.Recorder.time)
          e.Hft_obs.Recorder.source Hft_obs.Event.pp e.Hft_obs.Recorder.ev)
    (Hft_obs.Recorder.entries obs);

  (* the same data, reduced: the crash-to-first-I/O post-mortem *)
  Hft_harness.Report.failover_postmortem (Hft_obs.Recorder.entries obs);

  Format.printf "@.--- outcome ---@.";
  Format.printf "completed by       : %s@."
    (match o.System.completed_by with
    | `Primary -> "primary (no failover?)"
    | `Promoted_backup -> "promoted backup");
  Format.printf "operations finished: %d/%d@." o.System.results.Guest_results.ops
    ops;
  Format.printf "driver retries     : %d (uncertain completions, rule P7)@."
    o.System.results.Guest_results.retries;
  Format.printf "uncertain synthesized by backup: %d@."
    o.System.backup_stats.Stats.uncertain_synthesized;
  Format.printf "disk history consistent: %b@." o.System.disk_consistent;
  List.iter (fun e -> Format.printf "  inconsistency: %s@." e) o.System.disk_errors;

  (* compare final disk contents with an undisturbed run *)
  let reference = System.create ~params ~workload () in
  let _ = System.run reference in
  let same = ref true in
  for block = 0 to (Hft_devices.Disk.params (System.disk sys)).Hft_devices.Disk.blocks - 1 do
    if
      Hft_devices.Disk.read_block_now (System.disk sys) block
      <> Hft_devices.Disk.read_block_now (System.disk reference) block
    then same := false
  done;
  Format.printf "disk contents equal a crash-free run: %b@." !same
